//! TBON instantiation: the ad hoc path Figure 6 measures against LaunchMON.
//!
//! §5.2: "MRNet itself relies on a manual process to specify the target
//! nodes and uses remote access protocols like ssh or rsh, which reduces
//! the usage threshold of STAT as well as its portability."
//!
//! [`bootstrap_adhoc`] reproduces that path: the front end *sequentially*
//! rsh-forks one process per communication daemon and per leaf daemon,
//! keeping every session open as the daemon's stdio link. Cost is linear in
//! daemon count on the front end, and the whole launch fails outright when
//! the front end's fd table is exhausted — at ≈504 live sessions with
//! Atlas-era limits, matching the paper's consistent failure at 512 nodes.
//!
//! The LaunchMON path (used by `lmon-tools::stat`) does not appear here: it
//! launches the very same leaf daemon bodies through
//! `LmonFrontEnd::launch_and_spawn`, and broadcasts "MRNet communication
//! tree information from the front end to the daemons" (§5.2) as
//! piggybacked LMONP user data.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{TbonError, TbonResult};
use crate::filter::FilterRegistry;
use crate::overlay::{run_comm_node, FrontEndpoint, LeafEndpoint, Overlay};
use crate::spec::TopologySpec;
use lmon_cluster::process::{Pid, ProcCtx, ProcSpec};
use lmon_cluster::remote::RshSession;
use lmon_cluster::VirtualCluster;

/// What each leaf daemon runs once connected.
pub type LeafMain = Arc<dyn Fn(LeafEndpoint, &ProcCtx) + Send + Sync + 'static>;

/// A TBON instantiated over the virtual cluster by the ad hoc launcher.
pub struct AdhocNet {
    /// The front-end endpoint.
    pub front: FrontEndpoint,
    /// Live rsh sessions pinning front-end fds (comm daemons first, then
    /// leaves, in launch order).
    pub sessions: Vec<RshSession>,
    /// Daemon pids in launch order.
    pub pids: Vec<Pid>,
}

impl std::fmt::Debug for AdhocNet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdhocNet")
            .field("daemons", &self.pids.len())
            .field("live_sessions", &self.sessions.len())
            .finish()
    }
}

impl AdhocNet {
    /// Shut the overlay down and drop the rsh sessions.
    pub fn shutdown(mut self, cluster: &VirtualCluster) {
        self.front.shutdown();
        for pid in &self.pids {
            let _ = cluster.wait_pid(*pid);
            let _ = cluster.join_thread(*pid);
        }
        self.sessions.clear();
    }
}

/// Launch a TBON the way MRNet 1.x did: one sequential rsh per daemon.
///
/// `comm_hosts` receives the internal daemons (ignored for 1-deep specs),
/// `leaf_hosts` the tool daemons — one per leaf, typically the nodes of the
/// target job. Fails with [`TbonError::LaunchFailed`] when the front end
/// cannot fork another rsh; stranded daemons are cleaned up before
/// returning, but the fds consumed by still-live sessions are the caller's
/// to release (drop the error's partial state).
pub fn bootstrap_adhoc(
    cluster: &VirtualCluster,
    spec: &TopologySpec,
    comm_hosts: &[String],
    leaf_hosts: &[String],
    registry: FilterRegistry,
    leaf_main: LeafMain,
) -> TbonResult<AdhocNet> {
    if leaf_hosts.len() != spec.leaf_count() as usize {
        return Err(TbonError::LaunchFailed(format!(
            "spec wants {} leaves, got {} hosts",
            spec.leaf_count(),
            leaf_hosts.len()
        )));
    }
    if comm_hosts.len() < spec.comm_count() as usize {
        return Err(TbonError::LaunchFailed(format!(
            "spec wants {} comm daemons, got {} hosts",
            spec.comm_count(),
            comm_hosts.len()
        )));
    }

    let overlay = Overlay::build(spec, registry.clone());

    // Every daemon is pre-wired into the overlay by `Overlay::build`, so
    // subtrees are independent at spawn time: comm daemons at any level and
    // leaves can come up in any order. The *order-sensitive* parts — fd
    // charging, the fault-plan attempt index — happen in the sequential
    // admission pass below; the expensive part (connect latency plus
    // daemon-thread creation) is then fanned out over a bounded pool, with
    // pids reserved in launch order so the result is indistinguishable from
    // the serial walk.
    enum Daemon {
        Comm(crate::overlay::CommHarness),
        Leaf(crate::overlay::LeafEndpoint),
    }
    let daemons: Vec<(Daemon, &String)> = overlay
        .comm
        .into_iter()
        .map(Daemon::Comm)
        .zip(comm_hosts)
        .chain(overlay.leaves.into_iter().map(Daemon::Leaf).zip(leaf_hosts))
        .collect();

    // Admission pass: strictly sequential, comm daemons first then leaves.
    let mut tickets = Vec::with_capacity(daemons.len());
    for (d, host) in &daemons {
        match lmon_cluster::remote::rsh_admit(cluster, host) {
            Ok(t) => tickets.push(t),
            Err(e) => {
                // Nothing spawned yet: dropping the tickets releases fds.
                let kind = match d {
                    Daemon::Comm(_) => "comm",
                    Daemon::Leaf(_) => "leaf",
                };
                return Err(TbonError::LaunchFailed(format!("{kind} daemon on {host}: {e}")));
            }
        }
    }

    // Spawn pass: independent subtrees bring their daemons up concurrently.
    let block = cluster.reserve_pids(daemons.len());
    let work: Vec<_> = tickets.into_iter().zip(daemons).collect();
    let spawned = lmon_cluster::fanout::fanout(
        work,
        lmon_cluster::DEFAULT_LAUNCH_WORKERS,
        |i, (ticket, (daemon, _host))| match daemon {
            Daemon::Comm(harness) => {
                let slot = Arc::new(Mutex::new(Some(harness)));
                let reg = registry.clone();
                let spec_proc = ProcSpec::named("mrnet_commnode").arg(format!(
                    "--level={}",
                    slot.lock().as_ref().expect("fresh slot").pos.level
                ));
                let body = move |_ctx: ProcCtx| {
                    if let Some(harness) = slot.lock().take() {
                        run_comm_node(harness, reg);
                    }
                };
                ticket.spawn_with_pid(block.pid(i), spec_proc, body)
            }
            Daemon::Leaf(leaf) => {
                let slot = Arc::new(Mutex::new(Some(leaf)));
                let main = leaf_main.clone();
                let spec_proc = ProcSpec::named("mrnet_leafd").arg(format!(
                    "--leaf={}",
                    slot.lock().as_ref().expect("fresh slot").leaf_index
                ));
                let body = move |ctx: ProcCtx| {
                    if let Some(leaf) = slot.lock().take() {
                        // MRNet connect phase: hello to the parent.
                        if leaf.send_hello().is_ok() {
                            main(leaf, &ctx);
                        }
                    }
                };
                ticket.spawn_with_pid(block.pid(i), spec_proc, body)
            }
        },
    );

    let mut sessions = Vec::with_capacity(spawned.len());
    let mut pids = Vec::with_capacity(spawned.len());
    let mut first_err = None;
    for r in spawned {
        match r {
            Ok(session) => {
                pids.push(session.pid());
                sessions.push(session);
            }
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        cleanup(cluster, &pids);
        sessions.clear();
        return Err(TbonError::LaunchFailed(format!("daemon spawn: {e}")));
    }

    Ok(AdhocNet { front: overlay.front, sessions, pids })
}

/// Kill and reap a partial daemon set; nothing may outlive a failed launch.
fn cleanup(cluster: &VirtualCluster, pids: &[Pid]) {
    for pid in pids {
        let _ = cluster.kill(*pid);
    }
    for pid in pids {
        let _ = cluster.wait_pid(*pid);
        let _ = cluster.join_thread(*pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmon_cluster::config::{ClusterConfig, RshConfig};
    use lmon_cluster::VirtualCluster;
    use std::time::Duration;

    fn echo_leaf() -> LeafMain {
        Arc::new(|leaf, _ctx| loop {
            match leaf.recv() {
                Ok(crate::overlay::LeafEvent::Data(pkt)) => {
                    let _ = leaf.send_up(pkt.stream, pkt.tag, vec![leaf.leaf_index as u8]);
                }
                Ok(crate::overlay::LeafEvent::Shutdown) | Err(_) => return,
                Ok(crate::overlay::LeafEvent::StreamOpened(_)) => continue,
            }
        })
    }

    #[test]
    fn adhoc_one_deep_connects_and_gathers() {
        let cluster = VirtualCluster::new(ClusterConfig::with_nodes(6));
        let spec = TopologySpec::one_deep(6);
        let hosts: Vec<String> = (0..6).map(|i| cluster.config().hostname(i)).collect();
        let mut net =
            bootstrap_adhoc(&cluster, &spec, &[], &hosts, FilterRegistry::new(), echo_leaf())
                .expect("adhoc bootstrap");
        let ids = net.front.await_connections(6, Duration::from_secs(5)).unwrap();
        assert_eq!(ids.len(), 6);
        assert_eq!(cluster.rsh_state().total_connects(), 6, "one rsh per daemon");

        let stream = net.front.open_stream(crate::filter::FilterKind::Concat).unwrap();
        net.front.broadcast(stream, 0, vec![]).unwrap();
        let pkt = net.front.gather(stream, 0, Duration::from_secs(5)).unwrap();
        assert_eq!(pkt.payload.len(), 6);
        net.shutdown(&cluster);
        assert_eq!(cluster.rsh_state().live_sessions(), 0);
    }

    #[test]
    fn adhoc_with_comm_level_uses_extra_rsh_sessions() {
        let cluster = VirtualCluster::new(ClusterConfig::with_nodes(8));
        let spec = TopologySpec::parse("1x2x6").unwrap();
        let comm_hosts: Vec<String> = (6..8).map(|i| cluster.config().hostname(i)).collect();
        let leaf_hosts: Vec<String> = (0..6).map(|i| cluster.config().hostname(i)).collect();
        let mut net = bootstrap_adhoc(
            &cluster,
            &spec,
            &comm_hosts,
            &leaf_hosts,
            FilterRegistry::new(),
            echo_leaf(),
        )
        .unwrap();
        net.front.await_connections(6, Duration::from_secs(5)).unwrap();
        assert_eq!(cluster.rsh_state().total_connects(), 8, "2 comm + 6 leaves");
        net.shutdown(&cluster);
    }

    #[test]
    fn adhoc_fails_at_fd_exhaustion_like_figure_6() {
        // Budget for only 5 sessions; a 8-leaf 1-deep TBON must fail.
        let mut cfg = ClusterConfig::with_nodes(8);
        cfg.rsh =
            RshConfig { fds_per_session: 2, fe_fd_limit: 14, fe_base_fds: 4, ..Default::default() };
        let cluster = VirtualCluster::new(cfg);
        let spec = TopologySpec::one_deep(8);
        let hosts: Vec<String> = (0..8).map(|i| cluster.config().hostname(i)).collect();
        let err = bootstrap_adhoc(&cluster, &spec, &[], &hosts, FilterRegistry::new(), echo_leaf())
            .unwrap_err();
        assert!(matches!(err, TbonError::LaunchFailed(_)));
        assert!(err.to_string().contains("fork failed"), "{err}");
        assert_eq!(cluster.rsh_state().failed_connects(), 1);
    }

    #[test]
    fn host_count_mismatches_rejected() {
        let cluster = VirtualCluster::new(ClusterConfig::with_nodes(4));
        let spec = TopologySpec::parse("1x2x4").unwrap();
        let hosts: Vec<String> = (0..4).map(|i| cluster.config().hostname(i)).collect();
        // Missing comm hosts.
        assert!(bootstrap_adhoc(&cluster, &spec, &[], &hosts, FilterRegistry::new(), echo_leaf())
            .is_err());
        // Wrong leaf count.
        assert!(bootstrap_adhoc(
            &cluster,
            &TopologySpec::one_deep(3),
            &[],
            &hosts,
            FilterRegistry::new(),
            echo_leaf()
        )
        .is_err());
    }
}
