//! The overlay proper: links, endpoints, and the communication-daemon loop.
//!
//! Packets sent down from the front end are forwarded to every child;
//! packets sent up by leaves are aggregated at each internal node — one
//! packet per (stream, tag) *wave* per child — with the stream's filter,
//! so the front end receives a single combined packet per wave.
//!
//! The overlay is **self-healing** (DESIGN.md §9): every node carries an
//! out-of-band control mailbox, crash fault paths close links
//! deterministically (a `LinkDown` FIN to children, a `ChildGone` notice to
//! the parent, a death mark in the shared [`RouteTable`]), and
//! [`FrontEndpoint::repair`] re-parents a dead node's orphans onto its
//! grandparent — split across siblings when fan-out bounds require —
//! under a bumped overlay *epoch*. Packets stamped with a pre-repair epoch
//! are counted in [`OverlayStats`] and dropped, never mis-routed.
//!
//! On top of the failure path sits **planned maintenance** (DESIGN.md §12),
//! consolidated behind the [`FrontEndpoint::maintenance`] handle:
//! [`Maintenance::drain`] quiesces a daemon without losing a packet
//! (it flushes every in-flight wave before detaching), a `+N` spec suffix
//! pre-launches a hot-spare pool that repairs prefer over inflating
//! sibling fan-out, [`Maintenance::start_suspicion`] runs background
//! phi-accrual failure detection, and [`Maintenance::rolling_upgrade`]
//! walks the overlay replacing one comm daemon at a time. The old flat
//! `FrontEndpoint` methods remain as deprecated shims for one release.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam_channel::{unbounded, Receiver, SelectWaker, Sender, TryRecvError};
use parking_lot::Mutex;

use crate::error::{TbonError, TbonResult};
use crate::filter::{FilterKind, FilterRegistry};
use crate::packet::{Control, Down, Packet, Up, UpKind};
use crate::recovery::{
    adoption_candidates, plan_adoption, ChildLink, OverlayStats, OverlayStatsSnapshot, RecoveryCmd,
    RecoveryEvent, RepairReport, RouteTable,
};
use crate::spec::{NodePos, TopologySpec};
use crate::suspicion::{spawn_monitor, PhiAccrualParams, SuspicionHandle, SuspicionTable};

/// Reserved stream id for connection hellos.
pub const CONNECT_STREAM: u16 = 0;

/// First stream id handed out by [`FrontEndpoint::open_stream`].
const FIRST_USER_STREAM: u16 = 1;

/// Aggregation waves are keyed by (epoch, stream, tag): contributions from
/// different overlay epochs must never mix.
type WaveKey = (u64, u16, u16);

/// Everything a communication daemon needs to run its node.
pub struct CommHarness {
    /// This node's position.
    pub pos: NodePos,
    down_rx: Receiver<Down>,
    ctl_rx: Receiver<RecoveryCmd>,
    up_rx: Receiver<Up>,
    up_tx: Sender<Up>,
    children: Vec<ChildLink>,
    route: Arc<RouteTable>,
    stats: Arc<OverlayStats>,
}

/// A leaf endpoint, held by a tool daemon.
pub struct LeafEndpoint {
    /// Leaf index within the leaf level.
    pub leaf_index: u32,
    pos: NodePos,
    down_rx: Receiver<Down>,
    ctl_rx: Receiver<RecoveryCmd>,
    waker: SelectWaker,
    state: Mutex<LeafLink>,
}

/// The leaf's mutable view of its parent link (swapped on re-parenting).
struct LeafLink {
    up_tx: Sender<Up>,
    parent: NodePos,
    epoch: u64,
    parent_lost: bool,
}

/// Events a leaf observes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeafEvent {
    /// A data packet broadcast from the front end.
    Data(Packet),
    /// The front end opened a stream.
    StreamOpened(u16),
    /// The overlay is shutting down.
    Shutdown,
}

impl LeafEndpoint {
    /// This leaf's position in the tree.
    pub fn pos(&self) -> NodePos {
        self.pos
    }

    /// The overlay epoch this leaf currently stamps its packets with.
    pub fn epoch(&self) -> u64 {
        self.state.lock().epoch
    }

    /// Whether the parent link is currently down (orphaned, awaiting
    /// adoption). Cleared when a re-parenting rewire arrives.
    pub fn parent_lost(&self) -> bool {
        self.state.lock().parent_lost
    }

    /// The current parent this leaf sends its up-traffic to (changes when
    /// a repair re-parents the leaf).
    pub fn parent(&self) -> NodePos {
        self.state.lock().parent
    }

    /// Send one packet up the tree (one per wave).
    pub fn send_up(&self, stream: u16, tag: u16, payload: Vec<u8>) -> TbonResult<()> {
        let st = self.state.lock();
        st.up_tx
            .send(Up {
                from: self.pos,
                epoch: st.epoch,
                kind: UpKind::Packet(Packet::new(stream, tag, payload)),
            })
            .map_err(|_| TbonError::Disconnected)
    }

    /// Send the connection hello (leaf index on the reserved stream).
    pub fn send_hello(&self) -> TbonResult<()> {
        self.send_up(CONNECT_STREAM, 0, self.leaf_index.to_be_bytes().to_vec())
    }

    /// Block for the next downstream event.
    ///
    /// Recovery traffic is handled transparently: heartbeat pings are
    /// answered in place, link-down notices mark the parent lost (the leaf
    /// keeps waiting for adoption), and re-parenting rewires swap the up
    /// link without surfacing an event.
    pub fn recv(&self) -> TbonResult<LeafEvent> {
        loop {
            let wepoch = self.waker.epoch();
            // Control mailbox first: rewires and out-of-band shutdown must
            // never sit behind buffered data.
            loop {
                match self.ctl_rx.try_recv() {
                    Ok(RecoveryCmd::Rewire { epoch, parent, up }) => {
                        let mut st = self.state.lock();
                        st.up_tx = up;
                        st.parent = parent;
                        st.epoch = st.epoch.max(epoch);
                        st.parent_lost = false;
                    }
                    Ok(RecoveryCmd::Shutdown) => return Ok(LeafEvent::Shutdown),
                    // Reconfigure/Crash target comm daemons; inert here.
                    Ok(_) => {}
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => return Err(TbonError::Disconnected),
                }
            }
            match self.down_rx.try_recv() {
                Ok(Down::Data { epoch, pkt }) => {
                    let mut st = self.state.lock();
                    st.epoch = st.epoch.max(epoch);
                    return Ok(LeafEvent::Data(pkt));
                }
                Ok(Down::Ctl(Control::OpenStream { stream, .. })) => {
                    return Ok(LeafEvent::StreamOpened(stream))
                }
                Ok(Down::Ctl(Control::Shutdown)) => return Ok(LeafEvent::Shutdown),
                Ok(Down::Ctl(Control::Ping { seq })) => {
                    let st = self.state.lock();
                    let _ = st.up_tx.send(Up {
                        from: self.pos,
                        epoch: st.epoch,
                        kind: UpKind::Pong { pos: self.pos, seq },
                    });
                }
                Ok(Down::Ctl(Control::LinkDown)) => {
                    self.state.lock().parent_lost = true;
                }
                Err(TryRecvError::Empty) => {
                    self.waker.wait(wepoch);
                }
                Err(TryRecvError::Disconnected) => return Err(TbonError::Disconnected),
            }
        }
    }

    /// Block for the next *data* packet, transparently handling control
    /// traffic. Returns `None` on shutdown.
    pub fn recv_data(&self) -> TbonResult<Option<Packet>> {
        loop {
            match self.recv()? {
                LeafEvent::Data(p) => return Ok(Some(p)),
                LeafEvent::StreamOpened(_) => continue,
                LeafEvent::Shutdown => return Ok(None),
            }
        }
    }
}

/// The front-end endpoint of the overlay.
pub struct FrontEndpoint {
    children: Vec<ChildLink>,
    up_rx: Receiver<Up>,
    registry: FilterRegistry,
    streams: HashMap<u16, FilterKind>,
    next_stream: u16,
    epoch: u64,
    /// Pending up-packets not yet claimed by a gather, keyed by
    /// (stream, tag) → per-child payloads. Contributions are only ever
    /// from the current epoch; repairs clear the map.
    pending: HashMap<(u16, u16), BTreeMap<NodePos, Packet>>,
    route: Arc<RouteTable>,
    stats: Arc<OverlayStats>,
    events: Vec<RecoveryEvent>,
    /// Nodes known dead and not yet repaired away.
    dead_pending: Vec<NodePos>,
    ping_seq: u64,
    pongs: HashSet<NodePos>,
    /// Waves that completed under a superseded epoch and were preserved by
    /// a repair (every pre-repair child had contributed). Served by the
    /// next `gather` for that (stream, tag) before any new-epoch wave, so
    /// a drain that flushed its data cannot retroactively lose it.
    flushed: HashMap<(u16, u16), BTreeMap<NodePos, Packet>>,
    /// Nodes under a planned drain, shared with the suspicion monitor:
    /// their silence is intentional and must not read as death.
    draining: Arc<Mutex<HashSet<NodePos>>>,
    /// Drain confirmations received but not yet claimed by `drain_comm`.
    drained_pending: HashSet<NodePos>,
    /// (node, epoch) pairs a heartbeat sweep already reported missing:
    /// back-to-back sweeps straddling one failure attribute it exactly
    /// once. Re-armed by a pong, pruned at each epoch bump.
    reported_missing: HashSet<(NodePos, u64)>,
    /// Background phi-accrual monitor, once started (dropping the front
    /// end stops its thread).
    suspicion: Option<SuspicionHandle>,
}

impl FrontEndpoint {
    /// Number of direct children.
    pub fn fanout(&self) -> usize {
        self.children.len()
    }

    /// The current overlay epoch (bumped by every repair).
    pub fn overlay_epoch(&self) -> u64 {
        self.epoch
    }

    /// The shared route table (read-only observation: liveness, current
    /// topology, epoch).
    pub fn route_table(&self) -> Arc<RouteTable> {
        self.route.clone()
    }

    /// A snapshot of the overlay health counters.
    pub fn stats(&self) -> OverlayStatsSnapshot {
        self.stats.snapshot()
    }

    /// The planned-maintenance surface (DESIGN.md §12), one handle for
    /// the whole drain / upgrade / suspicion family:
    /// `fe.maintenance().drain(pos, timeout)`,
    /// `.upgrade(pos, timeout)`, `.rolling_upgrade(timeout)`,
    /// `.start_suspicion(params)`.
    pub fn maintenance(&mut self) -> Maintenance<'_> {
        Maintenance { fe: self }
    }

    /// Recovery events recorded so far, in occurrence order.
    pub fn recovery_events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// Drain the recovery event log.
    pub fn take_recovery_events(&mut self) -> Vec<RecoveryEvent> {
        std::mem::take(&mut self.events)
    }

    /// Open a stream with an aggregation filter; announces it down-tree.
    pub fn open_stream(&mut self, filter: FilterKind) -> TbonResult<u16> {
        let id = self.next_stream;
        self.next_stream += 1;
        self.streams.insert(id, filter.clone());
        for c in &self.children {
            c.down
                .send(Down::Ctl(Control::OpenStream { stream: id, filter: filter.clone() }))
                .map_err(|_| TbonError::Disconnected)?;
        }
        Ok(id)
    }

    /// Broadcast a packet to every leaf, stamped with the current epoch.
    pub fn broadcast(
        &self,
        stream: u16,
        tag: u16,
        payload: impl Into<bytes::Bytes>,
    ) -> TbonResult<()> {
        if !self.streams.contains_key(&stream) {
            return Err(TbonError::NoSuchStream(stream));
        }
        // One Bytes view up front: the per-child clone below is a refcount
        // bump on shared storage, not a payload copy per child.
        let payload = payload.into();
        for c in &self.children {
            c.down
                .send(Down::Data {
                    epoch: self.epoch,
                    pkt: Packet::new(stream, tag, payload.clone()),
                })
                .map_err(|_| TbonError::Disconnected)?;
        }
        Ok(())
    }

    /// Fold one up-link message into front-end state.
    fn process_up(&mut self, up: Up) {
        match up.kind {
            UpKind::Packet(pkt) => {
                if up.epoch < self.epoch || !self.children.iter().any(|c| c.pos == up.from) {
                    // Pre-repair traffic (or a child already repaired
                    // away): counted, dropped, never mis-aggregated.
                    self.stats.add_stale_packets(1);
                    return;
                }
                self.pending.entry((pkt.stream, pkt.tag)).or_default().insert(up.from, pkt);
            }
            UpKind::Pong { pos, seq } => {
                self.stats.add_pongs(1);
                if seq == self.ping_seq {
                    self.pongs.insert(pos);
                }
                // A node that answers again is no longer missing: re-arm
                // its heartbeat attribution for this epoch.
                self.reported_missing.remove(&(pos, self.epoch));
            }
            UpKind::ChildGone { pos } => self.note_dead(pos),
            UpKind::Drained { pos } => {
                self.drained_pending.insert(pos);
            }
        }
    }

    /// Record a death exactly once (idempotent across duplicate notices).
    fn note_dead(&mut self, pos: NodePos) {
        // A draining node's silence (and eventual link close) is planned:
        // it must never enter the failure ledger.
        if self.draining.lock().contains(&pos) {
            return;
        }
        let routed = self.route.lock().nodes.contains_key(&pos);
        if !routed {
            return;
        }
        self.route.mark_dead(pos);
        if !self.dead_pending.contains(&pos) {
            let orphans = self.route.current_children(pos).len();
            self.events.push(RecoveryEvent::Degraded { dead: pos, orphans, epoch: self.epoch });
            self.dead_pending.push(pos);
            self.stats.add_deaths(1);
        }
    }

    /// Drain link-close notices and death marks without blocking; returns
    /// the nodes currently known dead and not yet repaired.
    pub fn poll_failures(&mut self) -> Vec<NodePos> {
        while let Ok(up) = self.up_rx.try_recv() {
            self.process_up(up);
        }
        for pos in self.route.dead_nodes() {
            self.note_dead(pos);
        }
        let mut dead = self.dead_pending.clone();
        dead.sort_unstable();
        dead
    }

    /// Block until a failure is known (or `timeout` elapses); returns the
    /// first dead node in position order.
    pub fn wait_failure(&mut self, timeout: Duration) -> Option<NodePos> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let dead = self.poll_failures();
            if let Some(d) = dead.first() {
                return Some(*d);
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return None;
            }
            // Short receive chunks rather than one long block: a death can
            // now land in the route table out of band (background
            // suspicion marking a silent halt) with no up-link message to
            // wake this receive.
            if let Ok(up) = self.up_rx.recv_timeout(remaining.min(Duration::from_millis(10))) {
                self.process_up(up);
            }
        }
    }

    /// One heartbeat sweep: ping the whole tree and wait (up to `timeout`)
    /// for every live node's pong. Returns the nodes that did not answer —
    /// severed subtrees show up here even when their daemons still run,
    /// because their pongs are discarded at the cut.
    ///
    /// Idle spares (pings never reach them — they hold no tree position)
    /// and draining nodes (silent on purpose) are not expected to answer.
    /// A node already reported missing under the current epoch is not
    /// reported again: back-to-back sweeps straddling one failure plan its
    /// repair exactly once. The attribution re-arms when the node pongs
    /// again or the epoch advances.
    pub fn heartbeat(&mut self, timeout: Duration) -> Vec<NodePos> {
        self.ping_seq += 1;
        self.pongs.clear();
        self.stats.add_pings(1);
        for c in &self.children {
            let _ = c.down.send(Down::Ctl(Control::Ping { seq: self.ping_seq }));
        }
        let mut expected: HashSet<NodePos> = {
            let rt = self.route.lock();
            rt.nodes
                .iter()
                .filter(|(p, n)| p.level != 0 && n.alive && !rt.spare_pool.contains(p))
                .map(|(p, _)| *p)
                .collect()
        };
        {
            let draining = self.draining.lock();
            expected.retain(|p| !draining.contains(p));
        }
        let deadline = std::time::Instant::now() + timeout;
        while !expected.is_subset(&self.pongs) {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.up_rx.recv_timeout(remaining) {
                Ok(up) => self.process_up(up),
                Err(_) => break,
            }
        }
        let mut missing: Vec<NodePos> = expected.difference(&self.pongs).copied().collect();
        missing.retain(|p| self.reported_missing.insert((*p, self.epoch)));
        missing.sort_unstable();
        missing
    }

    /// The control mailbox of the interior comm daemon at `pos`; the root
    /// and leaves are rejected with [`TbonError::UnknownNode`].
    fn comm_ctl(&self, pos: NodePos) -> TbonResult<Sender<RecoveryCmd>> {
        let rt = self.route.lock();
        let node = rt.nodes.get(&pos).ok_or(TbonError::UnknownNode(pos))?;
        // Interior comm daemons are exactly the non-root nodes that can
        // parent (own an up channel).
        if pos.level == 0 || node.up.is_none() {
            return Err(TbonError::UnknownNode(pos));
        }
        node.ctl.clone().ok_or(TbonError::UnknownNode(pos))
    }

    /// Inject a deterministic crash into the comm daemon at `pos` (the
    /// bench/chaos kill switch): the daemon runs the same close-links
    /// fault path a [`CommFault`] crash takes.
    ///
    /// Only interior comm daemons are valid targets; the root and leaves
    /// are rejected with [`TbonError::UnknownNode`] rather than silently
    /// ignoring the command (leaves have no crash fault path to run).
    pub fn crash_comm(&self, pos: NodePos) -> TbonResult<()> {
        self.comm_ctl(pos)?.send(RecoveryCmd::Crash).map_err(|_| TbonError::Disconnected)
    }

    /// Inject a *silent* death into the comm daemon at `pos`: the daemon
    /// exits without the crash path's `LinkDown`/`ChildGone` notices or
    /// route-table mark — the in-process analogue of `kill -9`. Only
    /// background suspicion ([`Maintenance::start_suspicion`]) can detect
    /// it; the bench and chaos suites use exactly that to measure
    /// phi-accrual detection latency.
    pub fn halt_comm(&self, pos: NodePos) -> TbonResult<()> {
        self.comm_ctl(pos)?.send(RecoveryCmd::Halt).map_err(|_| TbonError::Disconnected)
    }

    /// Planned, loss-free removal of the comm daemon at `pos` (DESIGN.md
    /// §12): the daemon stops as soon as every in-flight wave it holds has
    /// flushed upward, closes its links, confirms with a `Drained` notice,
    /// and only then is its subtree re-parented through the normal repair
    /// machinery — under a draining guard, so the teardown never enters
    /// the failure ledger (no `Degraded` event, no death count, no
    /// suspicion) and is visible as `drains_completed` instead.
    ///
    /// Wave aggregates the drain flushes are preserved across the repair:
    /// a wave every pre-repair child had contributed to stays gatherable.
    /// Broadcasts whose replies are still spread across *other* daemons
    /// follow the usual PR 5 stale-epoch rule, so callers wanting strict
    /// zero-loss gather outstanding waves before draining (the rolling
    /// upgrade does).
    ///
    /// Returns the repair report once the subtree is whole again; on
    /// timeout the node keeps running (the drain guard is rolled back) and
    /// the caller may fall back to [`FrontEndpoint::crash_comm`].
    #[deprecated(since = "0.1.0", note = "use `fe.maintenance().drain(pos, timeout)`")]
    pub fn drain_comm(&mut self, pos: NodePos, timeout: Duration) -> TbonResult<RepairReport> {
        self.drain_comm_inner(pos, timeout)
    }

    fn drain_comm_inner(&mut self, pos: NodePos, timeout: Duration) -> TbonResult<RepairReport> {
        let ctl = self.comm_ctl(pos)?;
        self.events.push(RecoveryEvent::Draining { node: pos, epoch: self.epoch });
        self.draining.lock().insert(pos);
        if ctl.send(RecoveryCmd::Drain).is_err() {
            self.draining.lock().remove(&pos);
            return Err(TbonError::Disconnected);
        }
        let deadline = Instant::now() + timeout;
        while !self.drained_pending.remove(&pos) {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                self.draining.lock().remove(&pos);
                return Err(TbonError::Timeout);
            }
            if let Ok(up) = self.up_rx.recv_timeout(remaining) {
                self.process_up(up);
            }
        }
        self.stats.add_drains(1);
        // Re-parent the drained subtree; the draining guard keeps the
        // planned death out of the failure path inside repair().
        let report = self.repair(pos);
        self.draining.lock().remove(&pos);
        report
    }

    /// Repair the overlay after `dead`'s death: bump the overlay epoch,
    /// re-parent the orphaned subtrees onto the nearest live ancestor —
    /// split across the dead node's siblings when fan-out bounds require —
    /// and stamp the new route table so stale traffic is dropped, not
    /// mis-routed.
    ///
    /// Reconfigures are enqueued before rewires, so an orphan's first
    /// new-epoch packet can never outrun its adopter's child-set update
    /// (the comm loop drains its control mailbox whenever it sees a packet
    /// from a newer epoch).
    pub fn repair(&mut self, dead: NodePos) -> TbonResult<RepairReport> {
        if dead.level == 0 {
            return Err(TbonError::UnknownNode(dead));
        }
        self.note_dead(dead);
        let pre_children: HashSet<NodePos> = self.children.iter().map(|c| c.pos).collect();

        let root = NodePos { level: 0, index: 0 };
        let mut rt = self.route.lock();
        let node = rt.nodes.get_mut(&dead).ok_or(TbonError::UnknownNode(dead))?;
        node.alive = false;
        let direct_parent = node.parent.expect("non-root node has a parent");
        let mut orphans = node.children.clone();
        // A child repaired away by an earlier (child-first) repair is no
        // longer routed: it already has a live parent and must not be
        // re-adopted.
        orphans.retain(|o| rt.nodes.contains_key(o));
        orphans.sort_unstable();

        // Nearest live ancestor adopts (walk past chained failures).
        let mut g = direct_parent;
        while rt.nodes.get(&g).map(|n| !n.alive).unwrap_or(true) {
            match rt.nodes.get(&g).and_then(|n| n.parent) {
                Some(p) => g = p,
                None => {
                    g = root;
                    break;
                }
            }
        }

        self.epoch += 1;
        rt.epoch = self.epoch;
        let e = self.epoch;

        // Candidates: the dead node's live siblings under `g` that can
        // parent (internal nodes), then idle hot spares (preferred over
        // inflating a sibling past its designed fan-out), then `g` itself
        // as the fallback.
        let bound_for = |rt: &crate::recovery::RouteInner, p: NodePos| -> usize {
            2 * rt.base_fanout.get(p.level as usize).copied().unwrap_or(0).max(1)
        };
        let mut sibs: Vec<NodePos> = rt.nodes[&g]
            .children
            .iter()
            .copied()
            .filter(|&p| p != dead)
            .filter(|p| rt.nodes.get(p).map(|n| n.alive && n.up.is_some()).unwrap_or(false))
            .collect();
        sibs.sort_unstable();
        let sib_loads: Vec<(NodePos, usize)> =
            sibs.iter().map(|&p| (p, rt.nodes[&p].children.len())).collect();
        let mut spares: Vec<NodePos> = rt
            .spare_pool
            .iter()
            .copied()
            .filter(|p| rt.nodes.get(p).map(|n| n.alive).unwrap_or(false))
            .collect();
        spares.sort_unstable();
        // g's effective load: `dead` is leaving its child list, but only
        // when g actually lists it (g may be a further ancestor reached by
        // walking past a dead direct parent).
        let g_load =
            rt.nodes[&g].children.len() - usize::from(rt.nodes[&g].children.contains(&dead));
        let designed = rt.base_fanout.get(dead.level as usize).copied().unwrap_or(0);
        let candidates =
            adoption_candidates(&sib_loads, &spares, designed, (g, g_load, bound_for(&rt, g)));
        let adoptions = plan_adoption(&orphans, &candidates);

        // Spares the plan consumed: they attach under `g` and become
        // ordinary interior nodes.
        let spare_set: HashSet<NodePos> = spares.iter().copied().collect();
        let mut spares_used: Vec<NodePos> =
            adoptions.iter().map(|(_, a)| *a).filter(|a| spare_set.contains(a)).collect();
        spares_used.sort_unstable();
        spares_used.dedup();

        let mut adopt_by: BTreeMap<NodePos, Vec<ChildLink>> = BTreeMap::new();
        for (o, a) in &adoptions {
            let down = rt.nodes[o].down.clone().expect("non-root orphan has a down link");
            adopt_by.entry(*a).or_default().push(ChildLink { pos: *o, down });
        }
        // `g` adopts every activated spare alongside whatever orphans the
        // plan gave it directly.
        for &s in &spares_used {
            let down = rt.nodes[&s].down.clone().expect("spare has a down link");
            adopt_by.entry(g).or_default().push(ChildLink { pos: s, down });
        }

        // 1. Reconfigure the grandparent and every adopter.
        let mut affected: Vec<NodePos> = adopt_by.keys().copied().collect();
        if !affected.contains(&g) {
            affected.push(g);
        }
        affected.sort_unstable();
        for a in &affected {
            let drop_list = if *a == g { vec![dead] } else { Vec::new() };
            let adopt_list = adopt_by.get(a).cloned().unwrap_or_default();
            if *a == root {
                // The front end is its own control plane: apply in place.
                self.children.retain(|c| !drop_list.contains(&c.pos));
                self.children.extend(adopt_list);
                self.children.sort_by_key(|c| c.pos);
            } else {
                let ctl = rt.nodes[a].ctl.clone().expect("comm node has a ctl mailbox");
                let _ = ctl.send(RecoveryCmd::Reconfigure {
                    epoch: e,
                    drop: drop_list,
                    adopt: adopt_list,
                });
            }
        }

        // 2. Rewire activated spares onto `g`, *then* every orphan onto
        //    its adopter. Spare-first matters: a spare's Rewire must sit in
        //    its control mailbox before any orphan learns the spare's up
        //    channel, so the spare can never complete a wave into its
        //    still-dangling build-time up link (the comm loop drains its
        //    whole mailbox before touching up-traffic).
        let g_up = rt.nodes[&g].up.clone().expect("adopting ancestor can parent");
        for &s in &spares_used {
            if let Some(ctl) = rt.nodes[&s].ctl.clone() {
                let _ = ctl.send(RecoveryCmd::Rewire { epoch: e, parent: g, up: g_up.clone() });
            }
        }
        for (o, a) in &adoptions {
            let up = if *a == root {
                rt.nodes[&root].up.clone().expect("root has an up channel")
            } else {
                rt.nodes[a].up.clone().expect("adopter can parent")
            };
            if let Some(ctl) = rt.nodes[o].ctl.clone() {
                let _ = ctl.send(RecoveryCmd::Rewire { epoch: e, parent: *a, up });
            }
        }

        // 3. Route bookkeeping: move the orphans, activate the spares,
        //    drop the dead node (its last link handles die with the entry).
        for &s in &spares_used {
            if let Some(n) = rt.nodes.get_mut(&s) {
                n.parent = Some(g);
            }
            if let Some(n) = rt.nodes.get_mut(&g) {
                n.children.push(s);
                n.children.sort_unstable();
            }
            rt.spare_pool.retain(|p| *p != s);
        }
        for (o, a) in &adoptions {
            if let Some(n) = rt.nodes.get_mut(o) {
                n.parent = Some(*a);
            }
            if let Some(n) = rt.nodes.get_mut(a) {
                n.children.push(*o);
                n.children.sort_unstable();
            }
        }
        // Unlink the dead node from its *direct* parent too (which may be
        // a dead-but-unrepaired ancestor, not `g`): a later repair of that
        // ancestor must not see the pruned node as an orphan.
        for p in [g, direct_parent] {
            if let Some(n) = rt.nodes.get_mut(&p) {
                n.children.retain(|c| *c != dead);
            }
        }
        rt.nodes.remove(&dead);
        drop(rt);

        // 4. Partial waves gathered under the old epoch are stale: count
        //    and drop them rather than let a shrunken child set "complete"
        //    a partial aggregate. Waves every pre-repair child had already
        //    contributed to are *complete* data — a drain's flush, or a
        //    fully-delivered wave the caller had not gathered yet — and are
        //    preserved for the next gather instead of thrown away.
        let mut stale_packets = 0u64;
        let mut stale_waves = 0u64;
        for (key, wave) in std::mem::take(&mut self.pending) {
            let complete =
                wave.len() == pre_children.len() && wave.keys().all(|k| pre_children.contains(k));
            if complete {
                self.flushed.insert(key, wave);
            } else {
                stale_packets += wave.len() as u64;
                stale_waves += 1;
            }
        }
        if stale_packets > 0 {
            self.stats.add_stale_packets(stale_packets);
            self.stats.add_stale_waves(stale_waves);
        }
        self.dead_pending.retain(|p| *p != dead);
        // Heartbeat attributions from superseded epochs can never be
        // re-reported (the dedupe key includes the epoch): prune them.
        self.reported_missing.retain(|(_, ep)| *ep == e);

        for (o, a) in &adoptions {
            self.events.push(RecoveryEvent::Adopted { orphan: *o, adopter: *a, epoch: e });
        }
        self.events.push(RecoveryEvent::Healed { repaired: dead, epoch: e });
        self.stats.add_repairs(1);
        self.stats.add_adopted(adoptions.len() as u64);
        self.stats.add_spares_activated(spares_used.len() as u64);
        Ok(RepairReport { dead, epoch: e, adoptions, grandparent: g, spares_used })
    }

    /// Detect-and-repair in one call: drain failure notices, repair every
    /// known-dead node, and return the repair reports.
    pub fn heal_failures(&mut self) -> TbonResult<Vec<RepairReport>> {
        let dead = self.poll_failures();
        let mut reports = Vec::with_capacity(dead.len());
        for d in dead {
            // A repair can prune nodes another report named; skip those.
            if self.route.lock().nodes.contains_key(&d) {
                reports.push(self.repair(d)?);
            }
        }
        Ok(reports)
    }

    /// Start background phi-accrual failure suspicion (DESIGN.md §12):
    /// every interior comm daemon — idle spares included — is enrolled to
    /// beat over a dedicated channel (never the tree, so liveness traffic
    /// cannot perturb wave aggregation or fault counters), and a monitor
    /// thread grades each node Alive → Suspect → Dead from its
    /// inter-arrival history. A suspicion death lands in the shared route
    /// table, exactly where [`FrontEndpoint::poll_failures`] and
    /// [`FrontEndpoint::heal_failures`] already look — silent halts feed
    /// the normal repair path with no caller-driven sweep.
    ///
    /// Returns the live suspicion table (the `/metrics` per-child gauge
    /// source). The monitor stops when the front end is dropped.
    #[deprecated(since = "0.1.0", note = "use `fe.maintenance().start_suspicion(params)`")]
    pub fn start_suspicion(&mut self, params: PhiAccrualParams) -> Arc<SuspicionTable> {
        self.start_suspicion_inner(params)
    }

    fn start_suspicion_inner(&mut self, params: PhiAccrualParams) -> Arc<SuspicionTable> {
        let (beat_tx, beat_rx) = unbounded();
        {
            let rt = self.route.lock();
            for (pos, n) in rt.nodes.iter() {
                if pos.level != 0 && n.up.is_some() {
                    if let Some(ctl) = n.ctl.clone() {
                        let _ = ctl.send(RecoveryCmd::StartBeats {
                            beat: beat_tx.clone(),
                            interval: params.beat_interval,
                        });
                    }
                }
            }
        }
        // Only the enrolled daemons hold senders now: when the last one
        // exits at teardown, the channel disconnect stops the monitor.
        drop(beat_tx);
        let handle = spawn_monitor(
            beat_rx,
            params,
            self.route.clone(),
            self.stats.clone(),
            self.draining.clone(),
        );
        let table = handle.table();
        self.suspicion = Some(handle);
        table
    }

    /// Replace one comm daemon: drain it (loss-free), let the repair
    /// re-attach its subtree (preferring an idle hot spare), then verify
    /// the healed overlay with a full heartbeat sweep. Counted in
    /// `upgrades_completed` / `upgrades_failed`.
    #[deprecated(since = "0.1.0", note = "use `fe.maintenance().upgrade(pos, timeout)`")]
    pub fn upgrade_comm(&mut self, pos: NodePos, timeout: Duration) -> TbonResult<UpgradeStep> {
        self.upgrade_comm_inner(pos, timeout)
    }

    fn upgrade_comm_inner(&mut self, pos: NodePos, timeout: Duration) -> TbonResult<UpgradeStep> {
        let start = Instant::now();
        let report = match self.drain_comm_inner(pos, timeout) {
            Ok(r) => r,
            Err(e) => {
                self.stats.add_upgrades_failed(1);
                return Err(e);
            }
        };
        let drain = start.elapsed();
        // Post-heal verification: the broadcast ping must reach every
        // re-parented node — adopted orphans and activated spares alike —
        // and come back.
        let missing = self.heartbeat(timeout);
        if !missing.is_empty() {
            self.stats.add_upgrades_failed(1);
            return Err(TbonError::LaunchFailed(format!(
                "post-upgrade verification after replacing {pos:?}: {} unresponsive: {missing:?}",
                missing.len()
            )));
        }
        self.stats.add_upgrades(1);
        Ok(UpgradeStep {
            pos,
            drain,
            total: start.elapsed(),
            spare_used: report.spares_used.first().copied(),
            epoch: report.epoch,
        })
    }

    /// Rolling upgrade: walk every interior comm daemon — deepest level
    /// first, then index order, snapshot taken up front so replacement
    /// daemons are not themselves walked — and run
    /// [`Maintenance::upgrade`] on each. Between steps the walk
    /// pauses to heal *unplanned* failures (a crash or suspicion death
    /// that raced the upgrade); a walked node that was repaired away in
    /// the meantime is skipped.
    #[deprecated(since = "0.1.0", note = "use `fe.maintenance().rolling_upgrade(timeout)`")]
    pub fn rolling_upgrade(&mut self, per_node_timeout: Duration) -> TbonResult<UpgradeReport> {
        self.rolling_upgrade_inner(per_node_timeout)
    }

    fn rolling_upgrade_inner(&mut self, per_node_timeout: Duration) -> TbonResult<UpgradeReport> {
        let mut walk: Vec<NodePos> = {
            let rt = self.route.lock();
            rt.nodes
                .iter()
                .filter(|(p, n)| p.level != 0 && n.alive && n.up.is_some())
                .map(|(p, _)| *p)
                .filter(|p| !rt.spare_pool.contains(p))
                .collect()
        };
        walk.sort_by_key(|p| (std::cmp::Reverse(p.level), p.index));
        let mut report = UpgradeReport::default();
        for pos in walk {
            let repaired = self.heal_failures()?;
            report.unplanned_repairs += repaired.len();
            if !self.route.is_alive(pos) {
                continue;
            }
            report.steps.push(self.upgrade_comm_inner(pos, per_node_timeout)?);
        }
        let repaired = self.heal_failures()?;
        report.unplanned_repairs += repaired.len();
        report.epoch = self.epoch;
        Ok(report)
    }

    /// Gather one aggregated packet for `(stream, tag)`: waits for every
    /// direct child's contribution and applies the stream filter once more.
    ///
    /// A wave that completed just before a repair (and was preserved by
    /// it) is served first — data a drain flushed is never lost to the
    /// epoch bump that followed it.
    pub fn gather(&mut self, stream: u16, tag: u16, timeout: Duration) -> TbonResult<Packet> {
        let filter = self.streams.get(&stream).cloned().ok_or(TbonError::NoSuchStream(stream))?;
        if let Some(by_pos) = self.flushed.remove(&(stream, tag)) {
            let inputs: Vec<Vec<u8>> = by_pos.into_values().map(|p| p.payload.to_vec()).collect();
            let payload = self.registry.apply(&filter, inputs);
            return Ok(Packet::new(stream, tag, payload));
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let want = self.children.len();
            if self.pending.get(&(stream, tag)).map(|m| m.len() == want).unwrap_or(want == 0) {
                break;
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(TbonError::Timeout);
            }
            let up = self.up_rx.recv_timeout(remaining).map_err(|_| TbonError::Timeout)?;
            self.process_up(up);
        }
        let by_pos = self.pending.remove(&(stream, tag)).unwrap_or_default();
        let inputs: Vec<Vec<u8>> = by_pos.into_values().map(|p| p.payload.to_vec()).collect();
        let payload = self.registry.apply(&filter, inputs);
        Ok(Packet::new(stream, tag, payload))
    }

    /// Wait until every leaf's hello arrived; returns the leaf indices.
    pub fn await_connections(&mut self, leaves: u32, timeout: Duration) -> TbonResult<Vec<u32>> {
        let pkt = self.gather(CONNECT_STREAM, 0, timeout)?;
        let mut ids: Vec<u32> = pkt
            .payload
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        ids.sort_unstable();
        if ids.len() != leaves as usize {
            return Err(TbonError::LaunchFailed(format!(
                "expected {leaves} leaf hellos, got {}",
                ids.len()
            )));
        }
        Ok(ids)
    }

    /// Tear the overlay down: shutdown flows down the tree *and* out of
    /// band over every control mailbox, so orphans whose tree path died
    /// with their parent still exit promptly.
    pub fn shutdown(&self) {
        for c in &self.children {
            let _ = c.down.send(Down::Ctl(Control::Shutdown));
        }
        for ctl in self.route.all_ctl_senders() {
            let _ = ctl.send(RecoveryCmd::Shutdown);
        }
    }
}

impl Drop for FrontEndpoint {
    /// Dropping the front end tears the overlay down. The shared
    /// [`RouteTable`] keeps every link's sender alive (daemons hold it for
    /// the repair plane), so the pre-recovery "drop cascades channel
    /// disconnects" teardown no longer happens implicitly — this restores
    /// it: no error path or panic-unwind in an embedder can strand daemon
    /// threads in their waker waits. `shutdown` is idempotent, so an
    /// explicit call before the drop is fine.
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The planned-maintenance handle (DESIGN.md §12), obtained from
/// [`FrontEndpoint::maintenance`]: drains, upgrades, and background
/// suspicion live here, leaving `FrontEndpoint` itself to the data and
/// failure planes. The handle borrows the front end mutably, so a
/// maintenance walk can never interleave with another maintenance call on
/// the same overlay.
pub struct Maintenance<'a> {
    fe: &'a mut FrontEndpoint,
}

impl Maintenance<'_> {
    /// Planned, loss-free removal of the comm daemon at `pos`: flush its
    /// in-flight waves, detach it, re-parent its subtree under the
    /// draining guard. See the former `FrontEndpoint::drain_comm` for the
    /// full contract.
    pub fn drain(&mut self, pos: NodePos, timeout: Duration) -> TbonResult<RepairReport> {
        self.fe.drain_comm_inner(pos, timeout)
    }

    /// Replace one comm daemon: drain it (loss-free), let the repair
    /// re-attach its subtree (preferring an idle hot spare), then verify
    /// the healed overlay with a heartbeat sweep.
    pub fn upgrade(&mut self, pos: NodePos, timeout: Duration) -> TbonResult<UpgradeStep> {
        self.fe.upgrade_comm_inner(pos, timeout)
    }

    /// Rolling upgrade: walk every interior comm daemon (deepest level
    /// first) and [`Maintenance::upgrade`] each, healing unplanned
    /// failures between steps.
    pub fn rolling_upgrade(&mut self, per_node_timeout: Duration) -> TbonResult<UpgradeReport> {
        self.fe.rolling_upgrade_inner(per_node_timeout)
    }

    /// Start background phi-accrual failure suspicion; returns the live
    /// suspicion table. The monitor stops when the front end is dropped.
    pub fn start_suspicion(&mut self, params: PhiAccrualParams) -> Arc<SuspicionTable> {
        self.fe.start_suspicion_inner(params)
    }
}

/// One completed step of a rolling upgrade (see
/// [`Maintenance::rolling_upgrade`]).
#[derive(Debug, Clone)]
pub struct UpgradeStep {
    /// The interior comm daemon replaced in this step.
    pub pos: NodePos,
    /// Drain latency: request → `Drained` confirmation → subtree repaired.
    pub drain: Duration,
    /// Total step latency, post-heal verification sweep included.
    pub total: Duration,
    /// The hot spare that took over, when the pool had one idle (`None`
    /// means siblings absorbed the subtree).
    pub spare_used: Option<NodePos>,
    /// The epoch the overlay settled on after this step.
    pub epoch: u64,
}

/// What one [`Maintenance::rolling_upgrade`] walk did.
#[derive(Debug, Clone, Default)]
pub struct UpgradeReport {
    /// Completed steps, in walk order (deepest level first).
    pub steps: Vec<UpgradeStep>,
    /// Unplanned failures healed while the walk was paused between steps.
    pub unplanned_repairs: usize,
    /// The final overlay epoch.
    pub epoch: u64,
}

/// A fully built (but not yet running) overlay.
pub struct Overlay {
    /// The front-end endpoint.
    pub front: FrontEndpoint,
    /// Harnesses for each internal communication daemon.
    pub comm: Vec<CommHarness>,
    /// Endpoints for each leaf (tool daemon), in leaf-index order.
    pub leaves: Vec<LeafEndpoint>,
}

impl Overlay {
    /// Build all links for `spec`.
    pub fn build(spec: &TopologySpec, registry: FilterRegistry) -> Overlay {
        Self::build_shared(spec, registry, Arc::new(OverlayStats::default()))
    }

    /// [`Overlay::build`] with caller-supplied stats: an embedding daemon
    /// can aggregate several overlays' counters into one `/metrics`
    /// ledger.
    pub fn build_shared(
        spec: &TopologySpec,
        registry: FilterRegistry,
        stats: Arc<OverlayStats>,
    ) -> Overlay {
        let route = Arc::new(RouteTable::new(spec));

        // Per-node down + ctl channels and per-parent up channels. Hot
        // spares get the full set — they can parent once activated — plus
        // a registration count in the stats ledger.
        let spare_positions = spec.spare_positions();
        stats.add_spares_registered(spare_positions.len() as u64);
        let mut down_tx: HashMap<NodePos, Sender<Down>> = HashMap::new();
        let mut down_rx: HashMap<NodePos, Receiver<Down>> = HashMap::new();
        let mut ctl_tx: HashMap<NodePos, Sender<RecoveryCmd>> = HashMap::new();
        let mut ctl_rx: HashMap<NodePos, Receiver<RecoveryCmd>> = HashMap::new();
        let mut up_pair: HashMap<NodePos, (Sender<Up>, Receiver<Up>)> = HashMap::new();

        let root = NodePos { level: 0, index: 0 };
        let mut all_parents = vec![root];
        all_parents.extend(spec.comm_positions());
        all_parents.extend(spare_positions.iter().copied());
        for p in &all_parents {
            up_pair.insert(*p, unbounded());
        }
        let mut non_roots = spec.comm_positions();
        non_roots.extend(spare_positions.iter().copied());
        non_roots.extend(spec.leaf_positions());
        for n in &non_roots {
            let (dtx, drx) = unbounded();
            down_tx.insert(*n, dtx);
            down_rx.insert(*n, drx);
            let (ctx, crx) = unbounded();
            ctl_tx.insert(*n, ctx);
            ctl_rx.insert(*n, crx);
        }

        // Register the repair-plane handles in the route table.
        {
            let mut rt = route.lock();
            for (pos, node) in rt.nodes.iter_mut() {
                node.down = down_tx.get(pos).cloned();
                node.ctl = ctl_tx.get(pos).cloned();
                node.up = up_pair.get(pos).map(|(tx, _)| tx.clone());
            }
        }

        let links_of = |pos: NodePos| -> Vec<ChildLink> {
            spec.children(pos)
                .into_iter()
                .map(|c| ChildLink { pos: c, down: down_tx[&c].clone() })
                .collect()
        };

        let mut streams = HashMap::new();
        streams.insert(CONNECT_STREAM, FilterKind::Concat);

        let front = FrontEndpoint {
            children: links_of(root),
            up_rx: up_pair[&root].1.clone(),
            registry: registry.clone(),
            streams,
            next_stream: FIRST_USER_STREAM,
            epoch: 0,
            pending: HashMap::new(),
            route: route.clone(),
            stats: stats.clone(),
            events: Vec::new(),
            dead_pending: Vec::new(),
            ping_seq: 0,
            pongs: HashSet::new(),
            flushed: HashMap::new(),
            draining: Arc::new(Mutex::new(HashSet::new())),
            drained_pending: HashSet::new(),
            reported_missing: HashSet::new(),
            suspicion: None,
        };

        let mut comm: Vec<CommHarness> = spec
            .comm_positions()
            .into_iter()
            .map(|pos| {
                let parent = spec.parent(pos).expect("comm node has parent");
                CommHarness {
                    pos,
                    down_rx: down_rx[&pos].clone(),
                    ctl_rx: ctl_rx[&pos].clone(),
                    up_rx: up_pair[&pos].1.clone(),
                    up_tx: up_pair[&parent].0.clone(),
                    children: links_of(pos),
                    route: route.clone(),
                    stats: stats.clone(),
                }
            })
            .collect();
        // Spare harnesses ride after the regular comms (fault-plan indices
        // in the chaos suite stay stable): parentless, childless, and with
        // a deliberately dangling up link until a repair rewires them —
        // an idle spare has nothing to forward and nobody to forward to.
        for &pos in &spare_positions {
            let (dangling_up, _) = unbounded();
            comm.push(CommHarness {
                pos,
                down_rx: down_rx[&pos].clone(),
                ctl_rx: ctl_rx[&pos].clone(),
                up_rx: up_pair[&pos].1.clone(),
                up_tx: dangling_up,
                children: Vec::new(),
                route: route.clone(),
                stats: stats.clone(),
            });
        }

        let leaves = spec
            .leaf_positions()
            .into_iter()
            .map(|pos| {
                let parent = spec.parent(pos).expect("leaf has parent");
                let waker = SelectWaker::new();
                let drx = down_rx[&pos].clone();
                let crx = ctl_rx[&pos].clone();
                drx.watch(&waker);
                crx.watch(&waker);
                LeafEndpoint {
                    leaf_index: pos.index,
                    pos,
                    down_rx: drx,
                    ctl_rx: crx,
                    waker,
                    state: Mutex::new(LeafLink {
                        up_tx: up_pair[&parent].0.clone(),
                        parent,
                        epoch: 0,
                        parent_lost: false,
                    }),
                }
            })
            .collect();

        Overlay { front, comm, leaves }
    }
}

/// A deterministic fault schedule for one communication daemon.
///
/// Counters are per-daemon message counts, not wall-clock times, so a chaos
/// scenario crashes or partitions the overlay at exactly the same protocol
/// point on every run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommFault {
    /// Crash after receiving this many up-packets — mid-aggregation when
    /// it is smaller than the child count of a wave. The crash runs the
    /// deterministic close path: `LinkDown` to every child, a `ChildGone`
    /// notice to the parent, and a death mark in the route table.
    pub crash_after_up: Option<u64>,
    /// Crash after receiving this many down-messages (data or control).
    pub crash_after_down: Option<u64>,
    /// Severed child links: up-packets from these child slots (indices
    /// into the daemon's *original* child list) are discarded, as if the
    /// connection to that subtree were partitioned away. The cut is closed
    /// deterministically at daemon start: the severed child receives a
    /// `LinkDown` notice instead of a silently half-open link.
    pub sever_child_slots: std::collections::BTreeSet<usize>,
}

impl CommFault {
    /// A fault-free schedule.
    pub fn none() -> Self {
        Self::default()
    }

    /// Crash after `n` up-packets.
    pub fn crash_after_up(mut self, n: u64) -> Self {
        self.crash_after_up = Some(n);
        self
    }

    /// Crash after `n` down-messages.
    pub fn crash_after_down(mut self, n: u64) -> Self {
        self.crash_after_down = Some(n);
        self
    }

    /// Sever the link to child slot `slot`.
    pub fn sever_child(mut self, slot: usize) -> Self {
        self.sever_child_slots.insert(slot);
        self
    }

    /// Whether any fault is scheduled.
    pub fn is_none(&self) -> bool {
        self == &CommFault::default()
    }
}

/// What a comm-loop sweep decided to do next.
enum Exit {
    /// Run the deterministic crash path and return.
    Crash,
    /// Exit silently — no FIN, no notice, no death mark (`kill -9`).
    Silent,
    /// Planned drain finished flushing: close links and confirm `Drained`.
    Drained,
    /// Forward shutdown to the subtree and return.
    Shutdown,
    /// A link disconnected: the overlay is being dropped.
    Torn,
}

/// The running state of one communication daemon.
struct CommNode {
    pos: NodePos,
    up_tx: Sender<Up>,
    children: Vec<ChildLink>,
    severed: HashSet<NodePos>,
    epoch: u64,
    streams: HashMap<u16, FilterKind>,
    waves: HashMap<WaveKey, BTreeMap<NodePos, Packet>>,
    registry: FilterRegistry,
    route: Arc<RouteTable>,
    stats: Arc<OverlayStats>,
    /// A planned drain is underway: exit as soon as `waves` is empty.
    draining: bool,
    /// Suspicion enrollment: beat channel + nominal interval.
    beat: Option<(Sender<NodePos>, Duration)>,
    /// When the next beat is due (meaningful only while enrolled).
    next_beat: Instant,
}

impl CommNode {
    /// Children currently expected to contribute to a wave.
    fn want(&self) -> usize {
        self.children.iter().filter(|c| !self.severed.contains(&c.pos)).count()
    }

    /// Forward a down-message to every reachable (non-severed) child.
    fn forward_down(&self, msg: &Down) {
        for c in &self.children {
            if !self.severed.contains(&c.pos) {
                let _ = c.down.send(msg.clone());
            }
        }
    }

    /// Advance to `epoch`, discarding (and counting) waves stranded in
    /// older epochs, then completing any buffered waves that were waiting
    /// for this epoch to become current.
    fn advance_epoch(&mut self, epoch: u64) {
        if epoch <= self.epoch {
            return;
        }
        let stale: Vec<WaveKey> =
            self.waves.keys().copied().filter(|(e, _, _)| *e < epoch).collect();
        for key in stale {
            if let Some(wave) = self.waves.remove(&key) {
                self.stats.add_stale_packets(wave.len() as u64);
                self.stats.add_stale_waves(1);
            }
        }
        self.epoch = epoch;
        let now_current: Vec<WaveKey> =
            self.waves.keys().copied().filter(|(e, _, _)| *e == epoch).collect();
        for key in now_current {
            self.try_complete(key);
        }
    }

    /// Apply one control-mailbox command; `Some(exit)` ends the loop.
    fn apply_cmd(&mut self, cmd: RecoveryCmd) -> Option<Exit> {
        match cmd {
            RecoveryCmd::Reconfigure { epoch, drop, adopt } => {
                self.children.retain(|c| !drop.contains(&c.pos));
                self.children.extend(adopt);
                self.children.sort_by_key(|c| c.pos);
                self.advance_epoch(epoch);
                None
            }
            RecoveryCmd::Rewire { epoch, parent: _, up } => {
                self.up_tx = up;
                self.advance_epoch(epoch);
                None
            }
            RecoveryCmd::Crash => Some(Exit::Crash),
            RecoveryCmd::Halt => Some(Exit::Silent),
            RecoveryCmd::Drain => {
                // Not an exit yet: the loop keeps sweeping until every
                // in-flight wave has flushed, then exits `Drained`.
                self.draining = true;
                None
            }
            RecoveryCmd::StartBeats { beat, interval } => {
                // Beat immediately (the monitor seeds the node's history
                // from the first arrival) and schedule the next.
                let _ = beat.send(self.pos);
                self.next_beat = Instant::now() + interval;
                self.beat = Some((beat, interval));
                None
            }
            RecoveryCmd::Shutdown => Some(Exit::Shutdown),
        }
    }

    /// Drain the control mailbox in place. Called whenever a packet from a
    /// newer epoch arrives: the repair that bumped the epoch enqueued our
    /// reconfigure *before* that packet could have been sent, so draining
    /// here guarantees child-set updates are applied before any new-epoch
    /// wave is completed.
    fn apply_ctl_backlog(&mut self, ctl_rx: &Receiver<RecoveryCmd>) -> Option<Exit> {
        while let Ok(cmd) = ctl_rx.try_recv() {
            if let Some(exit) = self.apply_cmd(cmd) {
                return Some(exit);
            }
        }
        None
    }

    /// Complete the wave under `key` if its epoch is current and every
    /// expected child contributed: aggregate with the stream filter and
    /// forward one packet up.
    fn try_complete(&mut self, key: WaveKey) {
        let want = self.want();
        let ready = key.0 == self.epoch
            && want > 0
            && self.waves.get(&key).map(|w| w.len() == want).unwrap_or(false);
        if !ready {
            return;
        }
        let wave = self.waves.remove(&key).expect("checked above");
        let inputs: Vec<Vec<u8>> = wave.into_values().map(|p| p.payload.to_vec()).collect();
        let filter = self.streams.get(&key.1).cloned().unwrap_or(FilterKind::Concat);
        let payload = self.registry.apply(&filter, inputs);
        let sent = self.up_tx.send(Up {
            from: self.pos,
            epoch: self.epoch,
            kind: UpKind::Packet(Packet::new(key.1, key.2, payload)),
        });
        // A failed send means the parent died mid-forward: the aggregate is
        // in-flight loss (stale after the heal); keep serving the subtree
        // and wait for adoption rather than die.
        let _ = sent;
    }

    /// The deterministic crash path (the satellite fix): close every link
    /// explicitly — `LinkDown` FIN to each reachable child, a `ChildGone`
    /// notice to the parent, a death mark in the route table — so
    /// detection latency never depends on scheduler timing.
    fn crash(&mut self) {
        for c in &self.children {
            if !self.severed.contains(&c.pos) {
                let _ = c.down.send(Down::Ctl(Control::LinkDown));
                self.stats.add_link_down(1);
            }
        }
        let _ = self.up_tx.send(Up {
            from: self.pos,
            epoch: self.epoch,
            kind: UpKind::ChildGone { pos: self.pos },
        });
        self.route.mark_dead(self.pos);
    }

    /// Forward shutdown to every child (severed ones included: teardown
    /// must reach the whole subtree even across injected cuts).
    fn forward_shutdown(&self) {
        for c in &self.children {
            let _ = c.down.send(Down::Ctl(Control::Shutdown));
        }
    }

    /// The planned-teardown close path: like [`CommNode::crash`] it FINs
    /// every reachable child (they mark the parent lost and await
    /// adoption), but it confirms with a `Drained` notice instead of
    /// `ChildGone` and leaves no death mark — the front end repairs the
    /// route under its draining guard, outside the failure ledger.
    fn drained(&mut self) {
        for c in &self.children {
            if !self.severed.contains(&c.pos) {
                let _ = c.down.send(Down::Ctl(Control::LinkDown));
                self.stats.add_link_down(1);
            }
        }
        let _ = self.up_tx.send(Up {
            from: self.pos,
            epoch: self.epoch,
            kind: UpKind::Drained { pos: self.pos },
        });
    }
}

/// Run a communication daemon until shutdown: forward downstream traffic,
/// aggregate upstream waves with the stream filter.
pub fn run_comm_node(harness: CommHarness, registry: FilterRegistry) {
    run_comm_node_with_faults(harness, registry, CommFault::none());
}

/// [`run_comm_node`] with a [`CommFault`] schedule applied; a "crash" runs
/// the deterministic close path (`LinkDown` to children, `ChildGone` to the
/// parent, route-table death mark) and returns without forwarding shutdown,
/// exactly like a daemon dying mid-protocol whose sockets the kernel then
/// closes.
///
/// The loop is readiness-driven: one [`SelectWaker`] watches all three
/// links (control mailbox, downstream, upstream) and the daemon drains
/// whatever is ready in batches, then blocks on the waker condvar until the
/// next event. The control mailbox is always drained first — and re-drained
/// whenever a packet from a newer epoch arrives — so re-parenting commands
/// are applied before any traffic they ordered.
pub fn run_comm_node_with_faults(harness: CommHarness, registry: FilterRegistry, fault: CommFault) {
    let CommHarness { pos, down_rx, ctl_rx, up_rx, up_tx, children, route, stats } = harness;
    let mut streams = HashMap::new();
    streams.insert(CONNECT_STREAM, FilterKind::Concat);
    let mut node = CommNode {
        pos,
        up_tx,
        children,
        severed: HashSet::new(),
        epoch: 0,
        streams,
        waves: HashMap::new(),
        registry,
        route,
        stats,
        draining: false,
        beat: None,
        next_beat: Instant::now(),
    };

    // Deterministic sever close (the satellite fix): a severed child gets a
    // `LinkDown` notice at daemon start instead of a silently half-open
    // link, so detection latency in tests is seed-stable. Out-of-range
    // slots name no child and stay inert.
    for &slot in &fault.sever_child_slots {
        if let Some(link) = node.children.get(slot) {
            let _ = link.down.send(Down::Ctl(Control::LinkDown));
            node.stats.add_link_down(1);
            let cut = link.pos;
            node.severed.insert(cut);
        }
    }

    let mut up_seen = 0u64;
    let mut down_seen = 0u64;
    let mut ctl_batch: Vec<RecoveryCmd> = Vec::new();
    let mut down_batch: Vec<Down> = Vec::new();
    let mut up_batch: Vec<Up> = Vec::new();

    let waker = SelectWaker::new();
    ctl_rx.watch(&waker);
    down_rx.watch(&waker);
    up_rx.watch(&waker);

    let exit = 'outer: loop {
        // Epoch is read before the drain sweep: anything arriving during or
        // after the sweep advances it, so the wait below cannot miss it.
        let wepoch = waker.epoch();
        let mut torn = false;

        // 1. Control mailbox: repairs and out-of-band shutdown first.
        loop {
            match ctl_rx.try_drain(&mut ctl_batch, usize::MAX) {
                Ok(0) => break,
                Ok(_) => {}
                Err(TryRecvError::Disconnected) => {
                    torn = true;
                    break;
                }
                Err(TryRecvError::Empty) => break,
            }
            for cmd in ctl_batch.drain(..) {
                if let Some(exit) = node.apply_cmd(cmd) {
                    break 'outer exit;
                }
            }
        }

        // 2. Downstream: forward control and data to reachable children.
        loop {
            match down_rx.try_drain(&mut down_batch, usize::MAX) {
                Ok(0) => break,
                Ok(_) => {}
                Err(TryRecvError::Disconnected) => {
                    torn = true;
                    break;
                }
                Err(TryRecvError::Empty) => break,
            }
            for msg in down_batch.drain(..) {
                down_seen += 1;
                if fault.crash_after_down.is_some_and(|n| down_seen > n) {
                    break 'outer Exit::Crash;
                }
                match msg {
                    Down::Ctl(Control::OpenStream { stream, filter }) => {
                        node.streams.insert(stream, filter.clone());
                        node.forward_down(&Down::Ctl(Control::OpenStream { stream, filter }));
                    }
                    Down::Ctl(Control::Shutdown) => break 'outer Exit::Shutdown,
                    Down::Ctl(Control::Ping { seq }) => {
                        let _ = node.up_tx.send(Up {
                            from: node.pos,
                            epoch: node.epoch,
                            kind: UpKind::Pong { pos: node.pos, seq },
                        });
                        node.forward_down(&Down::Ctl(Control::Ping { seq }));
                    }
                    Down::Ctl(Control::LinkDown) => {
                        // The parent's FIN. Informational for a comm node:
                        // it keeps serving its subtree and the re-parenting
                        // rewire arrives over the ctl mailbox.
                    }
                    Down::Data { epoch, pkt } => {
                        if epoch > node.epoch {
                            // The repair that minted this epoch enqueued
                            // our reconfigure before this packet: apply it
                            // before forwarding.
                            if let Some(exit) = node.apply_ctl_backlog(&ctl_rx) {
                                break 'outer exit;
                            }
                            node.advance_epoch(epoch);
                        }
                        node.forward_down(&Down::Data { epoch, pkt });
                    }
                }
            }
        }

        // 3. Upstream: collect waves, aggregate completed ones.
        loop {
            match up_rx.try_drain(&mut up_batch, usize::MAX) {
                Ok(0) => break,
                Ok(_) => {}
                Err(TryRecvError::Disconnected) => {
                    torn = true;
                    break;
                }
                Err(TryRecvError::Empty) => break,
            }
            for up in up_batch.drain(..) {
                // Only data packets advance the crash counter: liveness
                // traffic (pongs, child-gone notices) is timing-dependent,
                // and counting it would make the documented "crash after N
                // up-packets" point seed-unstable whenever heartbeats run.
                if matches!(up.kind, UpKind::Packet(_)) {
                    up_seen += 1;
                    if fault.crash_after_up.is_some_and(|n| up_seen > n) {
                        break 'outer Exit::Crash;
                    }
                }
                if node.severed.contains(&up.from) {
                    node.stats.add_severed_discarded(1);
                    continue;
                }
                match up.kind {
                    UpKind::Pong { .. } | UpKind::ChildGone { .. } | UpKind::Drained { .. } => {
                        // Liveness traffic is epoch-free: forward as-is.
                        let _ = node.up_tx.send(Up {
                            from: node.pos,
                            epoch: node.epoch,
                            kind: up.kind,
                        });
                    }
                    UpKind::Packet(pkt) => {
                        if up.epoch > node.epoch {
                            // An adopted orphan can only be ahead of us if
                            // a repair reconfigured us first: apply it.
                            if let Some(exit) = node.apply_ctl_backlog(&ctl_rx) {
                                break 'outer exit;
                            }
                        }
                        if up.epoch < node.epoch || !node.children.iter().any(|c| c.pos == up.from)
                        {
                            node.stats.add_stale_packets(1);
                            continue;
                        }
                        let key = (up.epoch, pkt.stream, pkt.tag);
                        node.waves.entry(key).or_default().insert(up.from, pkt);
                        // Waves buffered under a still-future epoch wait
                        // for advance_epoch to complete them.
                        node.try_complete(key);
                    }
                }
            }
        }

        // A planned drain is done the moment no wave is mid-flight: every
        // contribution this daemon was holding has been aggregated and
        // forwarded (new waves cannot start — the front end is blocked in
        // `drain_comm` and sends nothing down).
        if node.draining && node.waves.is_empty() {
            break Exit::Drained;
        }

        // A disconnected link means the overlay itself is being dropped.
        if torn {
            break Exit::Torn;
        }

        // Suspicion beat, when enrolled and due.
        if let Some((beat, interval)) = &node.beat {
            let now = Instant::now();
            if now >= node.next_beat {
                let _ = beat.send(node.pos);
                node.next_beat = now + *interval;
            }
        }

        // Idle: block until any link signals readiness — capped at the
        // next beat deadline while enrolled in suspicion, so silence on
        // every link cannot silence the daemon itself.
        match &node.beat {
            Some(_) => {
                let until = node.next_beat.saturating_duration_since(Instant::now());
                waker.wait_timeout(wepoch, until.max(Duration::from_millis(1)));
            }
            None => waker.wait(wepoch),
        }
    };

    match exit {
        Exit::Crash => node.crash(),
        Exit::Silent => {}
        Exit::Drained => node.drained(),
        Exit::Shutdown => node.forward_shutdown(),
        Exit::Torn => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Instantiate an overlay with comm nodes on plain threads and run a
    /// closure per leaf on its own thread.
    fn run_overlay<R: Send + 'static>(
        spec: &str,
        registry: FilterRegistry,
        leaf_fn: impl Fn(LeafEndpoint) -> R + Send + Sync + 'static,
    ) -> (FrontEndpoint, Vec<std::thread::JoinHandle<R>>) {
        run_overlay_with_faults(spec, registry, Vec::new(), leaf_fn)
    }

    /// Like [`run_overlay`] but with per-comm-daemon fault schedules
    /// (indexed by position in `Overlay::comm`).
    fn run_overlay_with_faults<R: Send + 'static>(
        spec: &str,
        registry: FilterRegistry,
        faults: Vec<(usize, CommFault)>,
        leaf_fn: impl Fn(LeafEndpoint) -> R + Send + Sync + 'static,
    ) -> (FrontEndpoint, Vec<std::thread::JoinHandle<R>>) {
        let spec = TopologySpec::parse(spec).unwrap();
        let overlay = Overlay::build(&spec, registry.clone());
        for (i, harness) in overlay.comm.into_iter().enumerate() {
            let reg = registry.clone();
            let fault = faults
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, f)| f.clone())
                .unwrap_or_default();
            std::thread::spawn(move || run_comm_node_with_faults(harness, reg, fault));
        }
        let leaf_fn = Arc::new(leaf_fn);
        let handles = overlay
            .leaves
            .into_iter()
            .map(|leaf| {
                let f = leaf_fn.clone();
                std::thread::spawn(move || f(leaf))
            })
            .collect();
        (overlay.front, handles)
    }

    fn hello_then_wait_leaf() -> impl Fn(LeafEndpoint) + Send + Sync + 'static {
        |leaf: LeafEndpoint| {
            let _ = leaf.send_hello();
            while matches!(leaf.recv(), Ok(ev) if ev != LeafEvent::Shutdown) {}
        }
    }

    /// Hello, then echo `[leaf_index]` on every data packet.
    fn echo_leaf() -> impl Fn(LeafEndpoint) + Send + Sync + 'static {
        |leaf: LeafEndpoint| {
            let _ = leaf.send_hello();
            loop {
                match leaf.recv() {
                    Ok(LeafEvent::Data(pkt)) => {
                        let _ = leaf.send_up(pkt.stream, pkt.tag, vec![leaf.leaf_index as u8]);
                    }
                    Ok(LeafEvent::Shutdown) | Err(_) => return,
                    Ok(LeafEvent::StreamOpened(_)) => continue,
                }
            }
        }
    }

    fn pos(level: u32, index: u32) -> NodePos {
        NodePos { level, index }
    }

    #[test]
    fn hellos_flow_up_one_deep() {
        let (mut front, handles) = run_overlay("1x8", FilterRegistry::new(), |leaf| {
            leaf.send_hello().unwrap();
            // wait for shutdown so channels stay alive through the gather
            while !matches!(leaf.recv().unwrap(), LeafEvent::Shutdown) {}
        });
        let ids = front.await_connections(8, Duration::from_secs(5)).unwrap();
        assert_eq!(ids, (0..8).collect::<Vec<u32>>());
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn hellos_aggregate_through_comm_level() {
        let (mut front, handles) = run_overlay("1x4x16", FilterRegistry::new(), |leaf| {
            leaf.send_hello().unwrap();
            while !matches!(leaf.recv().unwrap(), LeafEvent::Shutdown) {}
        });
        assert_eq!(front.fanout(), 4, "front sees only its comm children");
        let ids = front.await_connections(16, Duration::from_secs(5)).unwrap();
        assert_eq!(ids.len(), 16);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn broadcast_reaches_all_leaves_and_sum_aggregates() {
        let (mut front, handles) = run_overlay("1x2x6", FilterRegistry::new(), |leaf| {
            // Wait for the work packet, reply with leaf_index+1 on the
            // same stream.
            loop {
                match leaf.recv().unwrap() {
                    LeafEvent::Data(pkt) => {
                        let value = (leaf.leaf_index as u64 + 1).to_be_bytes().to_vec();
                        leaf.send_up(pkt.stream, pkt.tag, value).unwrap();
                    }
                    LeafEvent::Shutdown => return,
                    LeafEvent::StreamOpened(_) => continue,
                }
            }
        });
        let stream = front.open_stream(FilterKind::SumU64).unwrap();
        front.broadcast(stream, 7, b"work".to_vec()).unwrap();
        let result = front.gather(stream, 7, Duration::from_secs(5)).unwrap();
        // sum of 1..=6 = 21
        assert_eq!(result.payload, 21u64.to_be_bytes());
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concat_collects_leaf_payloads_in_order() {
        let (mut front, handles) = run_overlay("1x3", FilterRegistry::new(), |leaf| loop {
            match leaf.recv().unwrap() {
                LeafEvent::Data(pkt) => {
                    leaf.send_up(pkt.stream, pkt.tag, vec![leaf.leaf_index as u8]).unwrap();
                }
                LeafEvent::Shutdown => return,
                LeafEvent::StreamOpened(_) => continue,
            }
        });
        let stream = front.open_stream(FilterKind::Concat).unwrap();
        front.broadcast(stream, 0, vec![]).unwrap();
        let result = front.gather(stream, 0, Duration::from_secs(5)).unwrap();
        assert_eq!(result.payload, vec![0, 1, 2]);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn custom_filter_applies_at_every_level() {
        // Count contributions: each internal node emits [sum of child
        // counts]; leaves emit [1]. With 1x2x4, the root should see 4.
        let mut registry = FilterRegistry::new();
        registry.register(
            1,
            Arc::new(|inputs| {
                let total: u64 = inputs
                    .iter()
                    .map(|i| {
                        let mut buf = [0u8; 8];
                        buf[8 - i.len().min(8)..].copy_from_slice(&i[..i.len().min(8)]);
                        u64::from_be_bytes(buf)
                    })
                    .sum();
                total.to_be_bytes().to_vec()
            }),
        );
        let (mut front, handles) = run_overlay("1x2x4", registry, |leaf| loop {
            match leaf.recv().unwrap() {
                LeafEvent::Data(pkt) => {
                    leaf.send_up(pkt.stream, pkt.tag, 1u64.to_be_bytes().to_vec()).unwrap();
                }
                LeafEvent::Shutdown => return,
                LeafEvent::StreamOpened(_) => continue,
            }
        });
        let stream = front.open_stream(FilterKind::Custom(1)).unwrap();
        front.broadcast(stream, 0, vec![]).unwrap();
        let result = front.gather(stream, 0, Duration::from_secs(5)).unwrap();
        assert_eq!(result.payload, 4u64.to_be_bytes());
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn multiple_waves_interleave_by_tag() {
        let (mut front, handles) = run_overlay("1x4", FilterRegistry::new(), |leaf| {
            // Answer two waves, deliberately answering wave 2 first for
            // even leaves to exercise wave bookkeeping.
            let mut packets = Vec::new();
            loop {
                match leaf.recv().unwrap() {
                    LeafEvent::Data(pkt) => {
                        packets.push(pkt);
                        if packets.len() == 2 {
                            break;
                        }
                    }
                    LeafEvent::Shutdown => return,
                    LeafEvent::StreamOpened(_) => continue,
                }
            }
            if leaf.leaf_index % 2 == 0 {
                packets.reverse();
            }
            for pkt in packets {
                leaf.send_up(pkt.stream, pkt.tag, vec![leaf.leaf_index as u8]).unwrap();
            }
            while !matches!(leaf.recv().unwrap(), LeafEvent::Shutdown) {}
        });
        let stream = front.open_stream(FilterKind::Concat).unwrap();
        front.broadcast(stream, 1, vec![]).unwrap();
        front.broadcast(stream, 2, vec![]).unwrap();
        let w2 = front.gather(stream, 2, Duration::from_secs(5)).unwrap();
        let w1 = front.gather(stream, 1, Duration::from_secs(5)).unwrap();
        assert_eq!(w1.payload, vec![0, 1, 2, 3]);
        assert_eq!(w2.payload, vec![0, 1, 2, 3]);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn gather_times_out_when_a_leaf_is_silent() {
        let (mut front, handles) = run_overlay("1x3", FilterRegistry::new(), |leaf| loop {
            match leaf.recv().unwrap() {
                LeafEvent::Data(pkt) => {
                    if leaf.leaf_index != 2 {
                        leaf.send_up(pkt.stream, pkt.tag, vec![1]).unwrap();
                    }
                }
                LeafEvent::Shutdown => return,
                LeafEvent::StreamOpened(_) => continue,
            }
        });
        let stream = front.open_stream(FilterKind::Concat).unwrap();
        front.broadcast(stream, 0, vec![]).unwrap();
        let err = front.gather(stream, 0, Duration::from_millis(100)).unwrap_err();
        assert_eq!(err, TbonError::Timeout);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn comm_crash_mid_aggregation_times_out_upstream() {
        // 1x2x8: each comm daemon aggregates 4 leaf hellos. Comm 0 crashes
        // after its first up-packet — its wave never completes, so the
        // front-end gather for the connect stream must time out rather
        // than deliver a partial aggregate.
        let (mut front, handles) = run_overlay_with_faults(
            "1x2x8",
            FilterRegistry::new(),
            vec![(0, CommFault::none().crash_after_up(1))],
            hello_then_wait_leaf(),
        );
        let err = front.await_connections(8, Duration::from_millis(200)).unwrap_err();
        assert_eq!(err, TbonError::Timeout);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn severed_child_link_surfaces_as_missing_leaves() {
        // Severing one leaf link partitions that subtree away: waves still
        // complete (the daemon no longer waits for the severed child), but
        // the front end sees fewer hellos than leaves — a clean, attributable
        // error rather than a hang.
        let (mut front, handles) = run_overlay_with_faults(
            "1x2x8",
            FilterRegistry::new(),
            vec![(1, CommFault::none().sever_child(2))],
            hello_then_wait_leaf(),
        );
        let err = front.await_connections(8, Duration::from_secs(5)).unwrap_err();
        match err {
            TbonError::LaunchFailed(msg) => {
                assert!(msg.contains("expected 8 leaf hellos, got 7"), "{msg}")
            }
            other => panic!("expected LaunchFailed, got {other:?}"),
        }
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn comm_crash_on_downstream_traffic_kills_broadcast_path() {
        // Comm 0 dies as soon as the second down-message arrives: the
        // connect wave still aggregates, but the broadcast after it never
        // reaches comm 0's leaves, so the gather times out.
        let (mut front, handles) = run_overlay_with_faults(
            "1x2x6",
            FilterRegistry::new(),
            vec![(0, CommFault::none().crash_after_down(1))],
            |leaf: LeafEndpoint| {
                let _ = leaf.send_hello();
                loop {
                    match leaf.recv() {
                        Ok(LeafEvent::Data(pkt)) => {
                            let _ = leaf.send_up(pkt.stream, pkt.tag, vec![leaf.leaf_index as u8]);
                        }
                        Ok(LeafEvent::Shutdown) | Err(_) => return,
                        Ok(LeafEvent::StreamOpened(_)) => continue,
                    }
                }
            },
        );
        front.await_connections(6, Duration::from_secs(5)).unwrap();
        let stream = front.open_stream(FilterKind::Concat).unwrap();
        front.broadcast(stream, 0, vec![]).unwrap();
        let err = front.gather(stream, 0, Duration::from_millis(200)).unwrap_err();
        assert_eq!(err, TbonError::Timeout);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn severing_an_out_of_range_slot_is_inert() {
        // Slot 99 names no child: the daemon must still wait for all of
        // its real children rather than aggregate a partial wave.
        let (mut front, handles) = run_overlay_with_faults(
            "1x2x8",
            FilterRegistry::new(),
            vec![(0, CommFault::none().sever_child(99))],
            hello_then_wait_leaf(),
        );
        let ids = front.await_connections(8, Duration::from_secs(5)).unwrap();
        assert_eq!(ids.len(), 8);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn fault_free_schedule_is_inert() {
        assert!(CommFault::none().is_none());
        assert!(!CommFault::none().crash_after_up(3).is_none());
        assert!(!CommFault::none().sever_child(0).is_none());
        // run_comm_node delegates to the faulty variant with a none fault;
        // the existing happy-path tests above exercise that wrapper.
    }

    #[test]
    fn unknown_stream_rejected() {
        let spec = TopologySpec::parse("1x2").unwrap();
        let mut overlay = Overlay::build(&spec, FilterRegistry::new());
        assert!(matches!(overlay.front.broadcast(99, 0, vec![]), Err(TbonError::NoSuchStream(99))));
        assert!(matches!(
            overlay.front.gather(99, 0, Duration::from_millis(1)),
            Err(TbonError::NoSuchStream(99))
        ));
    }

    // -- recovery -----------------------------------------------------------

    #[test]
    fn dead_comm_heals_via_grandparent_adoption() {
        let (mut front, handles) = run_overlay("1x2x8", FilterRegistry::new(), echo_leaf());
        front.await_connections(8, Duration::from_secs(5)).unwrap();
        let stream = front.open_stream(FilterKind::Concat).unwrap();

        // Healthy wave first.
        front.broadcast(stream, 1, vec![]).unwrap();
        let healthy = front.gather(stream, 1, Duration::from_secs(5)).unwrap();
        assert_eq!(healthy.payload.len(), 8);

        // Kill comm 0, detect, repair.
        let dead = pos(1, 0);
        front.crash_comm(dead).unwrap();
        assert_eq!(front.wait_failure(Duration::from_secs(5)), Some(dead));
        let report = front.repair(dead).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.grandparent, pos(0, 0));
        assert_eq!(report.adoptions.len(), 4, "all four orphan leaves re-parented");
        assert!(
            report.adoptions.iter().all(|(_, a)| *a == pos(1, 1)),
            "the surviving sibling (under its fan-out bound) adopts all: {:?}",
            report.adoptions
        );

        // Post-heal wave completes end-to-end with every leaf.
        front.broadcast(stream, 2, vec![]).unwrap();
        let healed = front.gather(stream, 2, Duration::from_secs(5)).unwrap();
        let mut got = healed.payload.to_vec();
        got.sort_unstable();
        assert_eq!(got, (0..8u8).collect::<Vec<u8>>(), "broadcast reaches adopted orphans");
        assert_eq!(front.overlay_epoch(), 1);

        // Event log: degraded -> adoptions -> healed.
        let events = front.take_recovery_events();
        assert!(
            matches!(events.first(), Some(RecoveryEvent::Degraded { dead: d, orphans: 4, .. }) if *d == dead),
            "{events:?}"
        );
        assert!(
            matches!(events.last(), Some(RecoveryEvent::Healed { repaired, epoch: 1 }) if *repaired == dead),
            "{events:?}"
        );
        assert_eq!(front.stats().repairs_completed, 1);
        assert_eq!(front.stats().orphans_adopted, 4);

        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn stale_epoch_packet_is_counted_and_dropped_during_reparenting() {
        // An up-packet stamped with a pre-repair epoch must be counted in
        // overlay stats and dropped — never delivered into a wave and never
        // a panic — including the race where it arrives mid-re-parenting.
        let (mut front, handles) = run_overlay("1x2x8", FilterRegistry::new(), echo_leaf());
        front.await_connections(8, Duration::from_secs(5)).unwrap();
        let stream = front.open_stream(FilterKind::Concat).unwrap();

        let dead = pos(1, 0);
        front.crash_comm(dead).unwrap();
        front.wait_failure(Duration::from_secs(5)).unwrap();

        let root_up = {
            let route = front.route_table();
            let rt = route.lock();
            rt.nodes[&pos(0, 0)].up.clone().unwrap()
        };
        // "In flight" from the dying daemon: enqueued before the repair,
        // processed after the epoch bump.
        root_up
            .send(Up {
                from: dead,
                epoch: 0,
                kind: UpKind::Packet(Packet::new(stream, 7, vec![0xEE])),
            })
            .unwrap();
        front.repair(dead).unwrap();
        // The re-parenting race: an old-epoch packet from a surviving
        // child landing after the bump.
        root_up
            .send(Up {
                from: pos(1, 1),
                epoch: 0,
                kind: UpKind::Packet(Packet::new(stream, 7, vec![0xDD])),
            })
            .unwrap();

        // A fresh wave on the same (stream, tag) must contain only
        // post-heal data.
        front.broadcast(stream, 7, vec![]).unwrap();
        let pkt = front.gather(stream, 7, Duration::from_secs(5)).unwrap();
        let mut got = pkt.payload.to_vec();
        got.sort_unstable();
        assert_eq!(got, (0..8u8).collect::<Vec<u8>>(), "no stale bytes delivered");
        assert!(
            front.stats().stale_packets_dropped >= 2,
            "both stale packets counted: {:?}",
            front.stats()
        );

        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn heartbeat_reports_severed_subtree_unresponsive() {
        // Severing comm 1's child slot 2 cuts leaf (2,6) away. Its daemon
        // still runs, but its pongs die at the cut — the heartbeat sweep
        // must attribute exactly that node.
        let (mut front, handles) = run_overlay_with_faults(
            "1x2x8",
            FilterRegistry::new(),
            vec![(1, CommFault::none().sever_child(2))],
            hello_then_wait_leaf(),
        );
        let err = front.await_connections(8, Duration::from_secs(5)).unwrap_err();
        assert!(matches!(err, TbonError::LaunchFailed(_)));
        let missing = front.heartbeat(Duration::from_secs(2));
        assert_eq!(missing, vec![pos(2, 6)], "only the severed leaf is unreachable");
        assert!(front.stats().pongs_received >= 9, "everyone else answered");
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn crash_fault_path_closes_links_deterministically() {
        // The crash fault path must close every link explicitly: LinkDown
        // to each child, ChildGone to the parent, a route-table death mark
        // — so detection needs no timing assumptions at all.
        let (mut front, handles) = run_overlay_with_faults(
            "1x2x8",
            FilterRegistry::new(),
            vec![(0, CommFault::none().crash_after_up(1))],
            hello_then_wait_leaf(),
        );
        let dead = front.wait_failure(Duration::from_secs(5));
        assert_eq!(dead, Some(pos(1, 0)));
        assert!(!front.route_table().is_alive(pos(1, 0)));
        assert_eq!(front.stats().link_down_notices, 4, "each of comm 0's children got a FIN");
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn liveness_traffic_does_not_advance_crash_counters() {
        // Comm 0 crashes after 5 up-packets. The 4 hellos are packets 1–4;
        // a full heartbeat sweep (4 pongs forwarded through comm 0) must
        // NOT advance the counter — only the broadcast wave's replies do,
        // so the crash lands at a protocol point, not a timing point.
        let (mut front, handles) = run_overlay_with_faults(
            "1x2x8",
            FilterRegistry::new(),
            vec![(0, CommFault::none().crash_after_up(5))],
            echo_leaf(),
        );
        front.await_connections(8, Duration::from_secs(5)).unwrap();
        let missing = front.heartbeat(Duration::from_secs(2));
        assert!(missing.is_empty(), "pongs must not crash the daemon: {missing:?}");
        let stream = front.open_stream(FilterKind::Concat).unwrap();
        front.broadcast(stream, 1, vec![]).unwrap();
        let err = front.gather(stream, 1, Duration::from_millis(300)).unwrap_err();
        assert_eq!(err, TbonError::Timeout, "crash on reply packet 6 stalls the wave");
        assert_eq!(front.poll_failures(), vec![pos(1, 0)], "crash detected deterministically");
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn dropping_the_front_end_tears_the_overlay_down() {
        // No explicit shutdown: dropping the front endpoint must still
        // stop every daemon thread (the route table keeps link senders
        // alive, so disconnect cascades alone cannot do it anymore).
        let (front, handles) = run_overlay("1x2x8", FilterRegistry::new(), hello_then_wait_leaf());
        drop(front);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn repair_rejects_root_and_unknown_nodes() {
        let spec = TopologySpec::parse("1x2x4").unwrap();
        let mut overlay = Overlay::build(&spec, FilterRegistry::new());
        assert!(matches!(overlay.front.repair(pos(0, 0)), Err(TbonError::UnknownNode(_))));
        assert!(matches!(overlay.front.repair(pos(5, 9)), Err(TbonError::UnknownNode(_))));
        assert!(matches!(overlay.front.crash_comm(pos(5, 9)), Err(TbonError::UnknownNode(_))));
        // The kill switch targets comm daemons only: the root and leaves
        // must be rejected, not silently ignored.
        assert!(matches!(overlay.front.crash_comm(pos(0, 0)), Err(TbonError::UnknownNode(_))));
        assert!(matches!(overlay.front.crash_comm(pos(2, 1)), Err(TbonError::UnknownNode(_))));
    }

    #[test]
    fn chained_deaths_repair_child_first_without_panic() {
        // 1x2x4x8: comm (1,0) and its child (2,0) both die. Repairing the
        // *child* first (the adversarial order — heal_failures sorts
        // parent-first, but repair() is public) must not panic, must not
        // re-adopt the already-repaired child, and the overlay must still
        // heal end to end.
        let (mut front, handles) = run_overlay("1x2x4x8", FilterRegistry::new(), echo_leaf());
        front.await_connections(8, Duration::from_secs(5)).unwrap();
        let stream = front.open_stream(FilterKind::Concat).unwrap();

        front.crash_comm(pos(2, 0)).unwrap();
        assert_eq!(front.wait_failure(Duration::from_secs(5)), Some(pos(2, 0)));
        front.crash_comm(pos(1, 0)).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while front.poll_failures().len() < 2 {
            assert!(std::time::Instant::now() < deadline, "second death never detected");
            std::thread::sleep(Duration::from_millis(1));
        }

        let child_repair = front.repair(pos(2, 0)).unwrap();
        assert_eq!(child_repair.grandparent, pos(0, 0), "walks past the dead parent");
        let parent_repair = front.repair(pos(1, 0)).unwrap();
        assert!(
            parent_repair.adoptions.iter().all(|(o, _)| *o != pos(2, 0)),
            "the already-repaired child must not be re-adopted: {:?}",
            parent_repair.adoptions
        );

        front.broadcast(stream, 2, vec![]).unwrap();
        let pkt = front.gather(stream, 2, Duration::from_secs(5)).unwrap();
        let mut got = pkt.payload.to_vec();
        got.sort_unstable();
        assert_eq!(got, (0..8u8).collect::<Vec<u8>>(), "both subtrees healed");
        assert_eq!(front.overlay_epoch(), 2);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn heal_failures_detects_and_repairs_in_one_call() {
        let (mut front, handles) = run_overlay("1x4x16", FilterRegistry::new(), echo_leaf());
        front.await_connections(16, Duration::from_secs(5)).unwrap();
        let stream = front.open_stream(FilterKind::Concat).unwrap();

        front.crash_comm(pos(1, 2)).unwrap();
        front.wait_failure(Duration::from_secs(5)).unwrap();
        let reports = front.heal_failures().unwrap();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].dead, pos(1, 2));

        front.broadcast(stream, 3, vec![]).unwrap();
        let pkt = front.gather(stream, 3, Duration::from_secs(5)).unwrap();
        let mut got = pkt.payload.to_vec();
        got.sort_unstable();
        assert_eq!(got, (0..16u8).collect::<Vec<u8>>());
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    // -- planned maintenance (DESIGN.md §12) --------------------------------

    #[test]
    fn drain_flushes_in_flight_waves_before_detaching() {
        // Drive comm (1,0) by hand: three of its four leaf contributions
        // arrive, then the drain request, then the fourth. The daemon must
        // hold the drain until the wave completes, flush the aggregate, and
        // only then confirm `Drained` — strictly in that order on the
        // parent link.
        let spec = TopologySpec::parse("1x2x8").unwrap();
        let mut overlay = Overlay::build(&spec, FilterRegistry::new());
        let idx = overlay.comm.iter().position(|c| c.pos == pos(1, 0)).unwrap();
        let harness = overlay.comm.remove(idx);
        let front = overlay.front;
        let (c0_up, c0_ctl) = {
            let route = front.route_table();
            let rt = route.lock();
            let n = &rt.nodes[&pos(1, 0)];
            (n.up.clone().unwrap(), n.ctl.clone().unwrap())
        };
        let join = std::thread::spawn(move || run_comm_node(harness, FilterRegistry::new()));

        for i in 0..3u32 {
            c0_up
                .send(Up {
                    from: pos(2, i),
                    epoch: 0,
                    kind: UpKind::Packet(Packet::new(5, 1, vec![i as u8])),
                })
                .unwrap();
        }
        c0_ctl.send(RecoveryCmd::Drain).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        assert!(front.up_rx.try_recv().is_err(), "must not confirm with a wave in flight");

        c0_up
            .send(Up {
                from: pos(2, 3),
                epoch: 0,
                kind: UpKind::Packet(Packet::new(5, 1, vec![3])),
            })
            .unwrap();
        let first = front.up_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        match first.kind {
            UpKind::Packet(p) => {
                assert_eq!(p.payload, vec![0, 1, 2, 3], "the flush carries the full aggregate")
            }
            other => panic!("expected the flushed wave first, got {other:?}"),
        }
        let second = front.up_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(
            matches!(second.kind, UpKind::Drained { pos: p } if p == pos(1, 0)),
            "drain confirmed only after the flush"
        );
        join.join().unwrap();
    }

    #[test]
    fn drain_comm_removes_a_daemon_without_entering_the_failure_path() {
        let (mut front, handles) = run_overlay("1x2x8", FilterRegistry::new(), echo_leaf());
        front.await_connections(8, Duration::from_secs(5)).unwrap();
        let stream = front.open_stream(FilterKind::Concat).unwrap();
        front.broadcast(stream, 1, vec![]).unwrap();
        front.gather(stream, 1, Duration::from_secs(5)).unwrap();

        let report = front.maintenance().drain(pos(1, 0), Duration::from_secs(5)).unwrap();
        assert_eq!(report.epoch, 1);
        assert!(report.spares_used.is_empty(), "no pool in this spec");
        assert!(report.adoptions.iter().all(|(_, a)| *a == pos(1, 1)), "{:?}", report.adoptions);

        // Planned removal: a drain, never a death.
        let stats = front.stats();
        assert_eq!(stats.drains_completed, 1);
        assert_eq!(stats.deaths_detected, 0, "a drain must not read as a failure");
        let events = front.take_recovery_events();
        assert!(
            matches!(events.first(), Some(RecoveryEvent::Draining { node, epoch: 0 }) if *node == pos(1, 0)),
            "{events:?}"
        );
        assert!(!events.iter().any(|e| matches!(e, RecoveryEvent::Degraded { .. })), "{events:?}");

        front.broadcast(stream, 2, vec![]).unwrap();
        let healed = front.gather(stream, 2, Duration::from_secs(5)).unwrap();
        let mut got = healed.payload.to_vec();
        got.sort_unstable();
        assert_eq!(got, (0..8u8).collect::<Vec<u8>>(), "no session interruption");
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn heartbeat_double_attribution_is_deduped_per_epoch() {
        let (mut front, handles) = run_overlay("1x2x8", FilterRegistry::new(), echo_leaf());
        front.await_connections(8, Duration::from_secs(5)).unwrap();

        front.crash_comm(pos(1, 0)).unwrap();
        front.wait_failure(Duration::from_secs(5)).unwrap();
        // First sweep attributes the severed subtree...
        let first = front.heartbeat(Duration::from_millis(300));
        assert_eq!(first, (0..4).map(|i| pos(2, i)).collect::<Vec<_>>());
        // ...and a second sweep straddling the same crash must not report
        // it again — the repair below is planned exactly once.
        let second = front.heartbeat(Duration::from_millis(300));
        assert!(second.is_empty(), "double attribution: {second:?}");

        front.repair(pos(1, 0)).unwrap();
        // Post-repair (new epoch) the attribution re-arms: everyone
        // answers now, and a *new* failure is reported afresh.
        assert!(front.heartbeat(Duration::from_secs(2)).is_empty());
        front.crash_comm(pos(1, 1)).unwrap();
        front.wait_failure(Duration::from_secs(5)).unwrap();
        let third = front.heartbeat(Duration::from_millis(300));
        assert_eq!(third.len(), 8, "all 8 leaves behind the new crash: {third:?}");
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn spare_takes_over_a_crashed_comm_at_designed_fanout() {
        let (mut front, handles) = run_overlay("1x2x8+1", FilterRegistry::new(), echo_leaf());
        front.await_connections(8, Duration::from_secs(5)).unwrap();
        let stream = front.open_stream(FilterKind::Concat).unwrap();
        assert_eq!(front.stats().spares_registered, 1);

        front.crash_comm(pos(1, 0)).unwrap();
        front.wait_failure(Duration::from_secs(5)).unwrap();
        let report = front.repair(pos(1, 0)).unwrap();
        assert_eq!(report.spares_used, vec![pos(1, 2)], "the idle spare takes the subtree");
        assert!(
            report.adoptions.iter().all(|(_, a)| *a == pos(1, 2)),
            "the sibling stays at its designed fan-out: {:?}",
            report.adoptions
        );
        assert!(front.route_table().idle_spares().is_empty());
        assert_eq!(front.stats().spares_activated, 1);

        front.broadcast(stream, 1, vec![]).unwrap();
        let pkt = front.gather(stream, 1, Duration::from_secs(5)).unwrap();
        let mut got = pkt.payload.to_vec();
        got.sort_unstable();
        assert_eq!(got, (0..8u8).collect::<Vec<u8>>(), "the replacement serves its subtree");
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn suspicion_catches_a_silent_halt_and_feeds_repair() {
        let (mut front, handles) = run_overlay("1x2x8", FilterRegistry::new(), echo_leaf());
        front.await_connections(8, Duration::from_secs(5)).unwrap();
        let stream = front.open_stream(FilterKind::Concat).unwrap();
        let table = front.maintenance().start_suspicion(PhiAccrualParams {
            beat_interval: Duration::from_millis(5),
            window: 16,
            suspect_phi: 1.0,
            dead_phi: 3.0,
            min_stddev: Duration::from_millis(2),
        });
        // Let some beat history accrue, then kill -9: no FIN, no notice,
        // no route-table mark — only the beats stop.
        std::thread::sleep(Duration::from_millis(100));
        front.halt_comm(pos(1, 0)).unwrap();

        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while front.route_table().is_alive(pos(1, 0)) {
            assert!(std::time::Instant::now() < deadline, "suspicion never declared the halt");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(table.level(pos(1, 0)), Some(crate::suspicion::SuspicionLevel::Dead));
        assert!(front.stats().suspicion_deaths >= 1);
        assert!(front.stats().beats_received > 0);

        // The suspicion death feeds the exact same repair path.
        front.heal_failures().unwrap();
        front.broadcast(stream, 1, vec![]).unwrap();
        let pkt = front.gather(stream, 1, Duration::from_secs(5)).unwrap();
        let mut got = pkt.payload.to_vec();
        got.sort_unstable();
        assert_eq!(got, (0..8u8).collect::<Vec<u8>>(), "the silent death healed end to end");
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn rolling_upgrade_swaps_every_comm_for_a_spare_with_zero_wave_loss() {
        let (mut front, handles) = run_overlay("1x2x8+2", FilterRegistry::new(), echo_leaf());
        front.await_connections(8, Duration::from_secs(5)).unwrap();
        let stream = front.open_stream(FilterKind::Concat).unwrap();
        front.broadcast(stream, 1, vec![]).unwrap();
        front.gather(stream, 1, Duration::from_secs(5)).unwrap();

        let report = front.maintenance().rolling_upgrade(Duration::from_secs(5)).unwrap();
        assert_eq!(report.steps.len(), 2, "both designed comm daemons walked: {report:?}");
        assert_eq!(report.unplanned_repairs, 0);
        let spares: Vec<_> = report.steps.iter().map(|s| s.spare_used).collect();
        assert_eq!(spares, vec![Some(pos(1, 2)), Some(pos(1, 3))], "one spare per step");
        assert_eq!(report.epoch, 2);

        let stats = front.stats();
        assert_eq!(stats.upgrades_completed, 2);
        assert_eq!(stats.drains_completed, 2);
        assert_eq!(stats.spares_activated, 2);
        assert_eq!(stats.deaths_detected, 0, "a planned upgrade is never a failure");

        front.broadcast(stream, 2, vec![]).unwrap();
        let pkt = front.gather(stream, 2, Duration::from_secs(5)).unwrap();
        let mut got = pkt.payload.to_vec();
        got.sort_unstable();
        assert_eq!(got, (0..8u8).collect::<Vec<u8>>(), "zero session interruption");
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// The one place the deprecated flat maintenance methods are still
    /// exercised: they must keep delegating to the same machinery for one
    /// release before removal.
    #[test]
    #[allow(deprecated)]
    fn deprecated_maintenance_shims_still_delegate() {
        let (mut front, handles) = run_overlay("1x2x8+2", FilterRegistry::new(), echo_leaf());
        front.await_connections(8, Duration::from_secs(5)).unwrap();
        let _table = front.start_suspicion(PhiAccrualParams::default());
        let report = front.drain_comm(pos(1, 0), Duration::from_secs(5)).unwrap();
        assert_eq!(report.spares_used, vec![pos(1, 2)]);
        let step = front.upgrade_comm(pos(1, 1), Duration::from_secs(5)).unwrap();
        assert_eq!(step.spare_used, Some(pos(1, 3)));
        let rolled = front.rolling_upgrade(Duration::from_secs(5)).unwrap();
        assert_eq!(rolled.unplanned_repairs, 0);
        assert_eq!(front.stats().deaths_detected, 0, "shims stay on the planned path");
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }
}
