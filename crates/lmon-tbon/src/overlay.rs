//! The overlay proper: links, endpoints, and the communication-daemon loop.
//!
//! Packets sent down from the front end are forwarded to every child;
//! packets sent up by leaves are aggregated at each internal node — one
//! packet per (stream, tag) *wave* per child — with the stream's filter,
//! so the front end receives a single combined packet per wave.

use std::collections::HashMap;
use std::time::Duration;

use crossbeam_channel::{unbounded, Receiver, SelectWaker, Sender, TryRecvError};

use crate::error::{TbonError, TbonResult};
use crate::filter::{FilterKind, FilterRegistry};
use crate::packet::{Control, Down, Packet, Up};
use crate::spec::{NodePos, TopologySpec};

/// Reserved stream id for connection hellos.
pub const CONNECT_STREAM: u16 = 0;

/// First stream id handed out by [`FrontEndpoint::open_stream`].
const FIRST_USER_STREAM: u16 = 1;

/// Everything a communication daemon needs to run its node.
pub struct CommHarness {
    /// This node's position.
    pub pos: NodePos,
    down_rx: Receiver<Down>,
    up_tx: Sender<Up>,
    my_slot: usize,
    child_down: Vec<Sender<Down>>,
    up_rx: Receiver<Up>,
}

/// A leaf endpoint, held by a tool daemon.
pub struct LeafEndpoint {
    /// Leaf index within the leaf level.
    pub leaf_index: u32,
    down_rx: Receiver<Down>,
    up_tx: Sender<Up>,
    my_slot: usize,
}

/// Events a leaf observes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeafEvent {
    /// A data packet broadcast from the front end.
    Data(Packet),
    /// The front end opened a stream.
    StreamOpened(u16),
    /// The overlay is shutting down.
    Shutdown,
}

impl LeafEndpoint {
    /// Send one packet up the tree (one per wave).
    pub fn send_up(&self, stream: u16, tag: u16, payload: Vec<u8>) -> TbonResult<()> {
        self.up_tx
            .send(Up { child_slot: self.my_slot, packet: Packet::new(stream, tag, payload) })
            .map_err(|_| TbonError::Disconnected)
    }

    /// Send the connection hello (leaf index on the reserved stream).
    pub fn send_hello(&self) -> TbonResult<()> {
        self.send_up(CONNECT_STREAM, 0, self.leaf_index.to_be_bytes().to_vec())
    }

    /// Block for the next downstream event.
    pub fn recv(&self) -> TbonResult<LeafEvent> {
        match self.down_rx.recv().map_err(|_| TbonError::Disconnected)? {
            Down::Data(p) => Ok(LeafEvent::Data(p)),
            Down::Ctl(Control::OpenStream { stream, .. }) => Ok(LeafEvent::StreamOpened(stream)),
            Down::Ctl(Control::Shutdown) => Ok(LeafEvent::Shutdown),
        }
    }

    /// Block for the next *data* packet, transparently handling control
    /// traffic. Returns `None` on shutdown.
    pub fn recv_data(&self) -> TbonResult<Option<Packet>> {
        loop {
            match self.recv()? {
                LeafEvent::Data(p) => return Ok(Some(p)),
                LeafEvent::StreamOpened(_) => continue,
                LeafEvent::Shutdown => return Ok(None),
            }
        }
    }
}

/// The front-end endpoint of the overlay.
pub struct FrontEndpoint {
    child_down: Vec<Sender<Down>>,
    up_rx: Receiver<Up>,
    registry: FilterRegistry,
    streams: HashMap<u16, FilterKind>,
    next_stream: u16,
    /// Pending up-packets not yet claimed by a gather, keyed by
    /// (stream, tag) → per-child-slot payloads.
    pending: HashMap<(u16, u16), HashMap<usize, Packet>>,
}

impl FrontEndpoint {
    /// Number of direct children.
    pub fn fanout(&self) -> usize {
        self.child_down.len()
    }

    /// Open a stream with an aggregation filter; announces it down-tree.
    pub fn open_stream(&mut self, filter: FilterKind) -> TbonResult<u16> {
        let id = self.next_stream;
        self.next_stream += 1;
        self.streams.insert(id, filter.clone());
        for c in &self.child_down {
            c.send(Down::Ctl(Control::OpenStream { stream: id, filter: filter.clone() }))
                .map_err(|_| TbonError::Disconnected)?;
        }
        Ok(id)
    }

    /// Broadcast a packet to every leaf.
    pub fn broadcast(&self, stream: u16, tag: u16, payload: Vec<u8>) -> TbonResult<()> {
        if !self.streams.contains_key(&stream) {
            return Err(TbonError::NoSuchStream(stream));
        }
        for c in &self.child_down {
            c.send(Down::Data(Packet::new(stream, tag, payload.clone())))
                .map_err(|_| TbonError::Disconnected)?;
        }
        Ok(())
    }

    /// Gather one aggregated packet for `(stream, tag)`: waits for every
    /// direct child's contribution and applies the stream filter once more.
    pub fn gather(&mut self, stream: u16, tag: u16, timeout: Duration) -> TbonResult<Packet> {
        let filter = self.streams.get(&stream).cloned().ok_or(TbonError::NoSuchStream(stream))?;
        let want = self.child_down.len();
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.pending.get(&(stream, tag)).map(|m| m.len() == want).unwrap_or(want == 0) {
                break;
            }
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(TbonError::Timeout);
            }
            let up = self.up_rx.recv_timeout(remaining).map_err(|_| TbonError::Timeout)?;
            self.pending
                .entry((up.packet.stream, up.packet.tag))
                .or_default()
                .insert(up.child_slot, up.packet);
        }
        let by_slot = self.pending.remove(&(stream, tag)).unwrap_or_default();
        let mut slots: Vec<(usize, Packet)> = by_slot.into_iter().collect();
        slots.sort_by_key(|(slot, _)| *slot);
        let inputs: Vec<Vec<u8>> = slots.into_iter().map(|(_, p)| p.payload).collect();
        let payload = self.registry.apply(&filter, inputs);
        Ok(Packet::new(stream, tag, payload))
    }

    /// Wait until every leaf's hello arrived; returns the leaf indices.
    pub fn await_connections(&mut self, leaves: u32, timeout: Duration) -> TbonResult<Vec<u32>> {
        let pkt = self.gather(CONNECT_STREAM, 0, timeout)?;
        let mut ids: Vec<u32> = pkt
            .payload
            .chunks_exact(4)
            .map(|c| u32::from_be_bytes(c.try_into().expect("4-byte chunk")))
            .collect();
        ids.sort_unstable();
        if ids.len() != leaves as usize {
            return Err(TbonError::LaunchFailed(format!(
                "expected {leaves} leaf hellos, got {}",
                ids.len()
            )));
        }
        Ok(ids)
    }

    /// Tear the overlay down.
    pub fn shutdown(&self) {
        for c in &self.child_down {
            let _ = c.send(Down::Ctl(Control::Shutdown));
        }
    }
}

/// A fully built (but not yet running) overlay.
pub struct Overlay {
    /// The front-end endpoint.
    pub front: FrontEndpoint,
    /// Harnesses for each internal communication daemon.
    pub comm: Vec<CommHarness>,
    /// Endpoints for each leaf (tool daemon), in leaf-index order.
    pub leaves: Vec<LeafEndpoint>,
}

impl Overlay {
    /// Build all links for `spec`.
    pub fn build(spec: &TopologySpec, registry: FilterRegistry) -> Overlay {
        // Per-node down channels and per-parent up channels.
        let mut down_tx: HashMap<NodePos, Sender<Down>> = HashMap::new();
        let mut down_rx: HashMap<NodePos, Receiver<Down>> = HashMap::new();
        let mut up_pair: HashMap<NodePos, (Sender<Up>, Receiver<Up>)> = HashMap::new();

        let root = NodePos { level: 0, index: 0 };
        let mut all_parents = vec![root];
        all_parents.extend(spec.comm_positions());
        for p in &all_parents {
            up_pair.insert(*p, unbounded());
        }
        let mut non_roots = spec.comm_positions();
        non_roots.extend(spec.leaf_positions());
        for n in &non_roots {
            let (tx, rx) = unbounded();
            down_tx.insert(*n, tx);
            down_rx.insert(*n, rx);
        }

        // Child slot assignment: index within the parent's children list.
        let slot_of = |spec: &TopologySpec, pos: NodePos| -> usize {
            let parent = spec.parent(pos).expect("non-root");
            spec.children(parent).iter().position(|c| *c == pos).expect("child listed by parent")
        };

        let mut streams = HashMap::new();
        streams.insert(CONNECT_STREAM, FilterKind::Concat);

        let front = FrontEndpoint {
            child_down: spec.children(root).iter().map(|c| down_tx[c].clone()).collect(),
            up_rx: up_pair[&root].1.clone(),
            registry: registry.clone(),
            streams,
            next_stream: FIRST_USER_STREAM,
            pending: HashMap::new(),
        };

        let comm = spec
            .comm_positions()
            .into_iter()
            .map(|pos| {
                let parent = spec.parent(pos).expect("comm node has parent");
                CommHarness {
                    pos,
                    down_rx: down_rx[&pos].clone(),
                    up_tx: up_pair[&parent].0.clone(),
                    my_slot: slot_of(spec, pos),
                    child_down: spec.children(pos).iter().map(|c| down_tx[c].clone()).collect(),
                    up_rx: up_pair[&pos].1.clone(),
                }
            })
            .collect();

        let leaves = spec
            .leaf_positions()
            .into_iter()
            .map(|pos| {
                let parent = spec.parent(pos).expect("leaf has parent");
                LeafEndpoint {
                    leaf_index: pos.index,
                    down_rx: down_rx[&pos].clone(),
                    up_tx: up_pair[&parent].0.clone(),
                    my_slot: slot_of(spec, pos),
                }
            })
            .collect();

        Overlay { front, comm, leaves }
    }
}

/// A deterministic fault schedule for one communication daemon.
///
/// Counters are per-daemon message counts, not wall-clock times, so a chaos
/// scenario crashes or partitions the overlay at exactly the same protocol
/// point on every run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommFault {
    /// Crash (return from the daemon loop) after receiving this many
    /// up-packets — mid-aggregation when it is smaller than the child
    /// count of a wave.
    pub crash_after_up: Option<u64>,
    /// Crash after receiving this many down-messages (data or control).
    pub crash_after_down: Option<u64>,
    /// Severed child links: up-packets from these child slots are discarded,
    /// as if the connection to that subtree were partitioned away.
    pub sever_child_slots: std::collections::BTreeSet<usize>,
}

impl CommFault {
    /// A fault-free schedule.
    pub fn none() -> Self {
        Self::default()
    }

    /// Crash after `n` up-packets.
    pub fn crash_after_up(mut self, n: u64) -> Self {
        self.crash_after_up = Some(n);
        self
    }

    /// Crash after `n` down-messages.
    pub fn crash_after_down(mut self, n: u64) -> Self {
        self.crash_after_down = Some(n);
        self
    }

    /// Sever the link to child slot `slot`.
    pub fn sever_child(mut self, slot: usize) -> Self {
        self.sever_child_slots.insert(slot);
        self
    }

    /// Whether any fault is scheduled.
    pub fn is_none(&self) -> bool {
        self == &CommFault::default()
    }
}

/// Run a communication daemon until shutdown: forward downstream traffic,
/// aggregate upstream waves with the stream filter.
pub fn run_comm_node(harness: CommHarness, registry: FilterRegistry) {
    run_comm_node_with_faults(harness, registry, CommFault::none());
}

/// [`run_comm_node`] with a [`CommFault`] schedule applied; a "crash"
/// returns from the loop without forwarding shutdown to children, exactly
/// like a daemon dying mid-protocol.
///
/// The loop is readiness-driven: one [`SelectWaker`] watches both links and
/// the daemon drains whatever is ready in batches, then blocks on the waker
/// condvar until the next event. There is no sleep-polling anywhere — a
/// packet arriving at an idle daemon wakes it immediately, and a burst is
/// processed without a wakeup per message. Each link is drained with
/// [`crossbeam_channel::Receiver::try_drain`] — the same one-lock batch
/// primitive the session-mux receive pump uses — rather than a bespoke
/// per-message `try_recv` sweep, which paid one lock round trip per packet.
pub fn run_comm_node_with_faults(harness: CommHarness, registry: FilterRegistry, fault: CommFault) {
    let CommHarness { pos: _, down_rx, up_tx, my_slot, child_down, up_rx } = harness;
    let mut streams: HashMap<u16, FilterKind> = HashMap::new();
    streams.insert(CONNECT_STREAM, FilterKind::Concat);
    // (stream, tag) → per-slot packets for the wave in flight.
    let mut waves: HashMap<(u16, u16), HashMap<usize, Packet>> = HashMap::new();
    // Only count severed slots that name real children: an out-of-range
    // slot must not shrink `want`, or waves would "complete" with a
    // silently partial aggregate.
    let severed = fault.sever_child_slots.iter().filter(|&&s| s < child_down.len()).count();
    let want = child_down.len() - severed;
    let mut up_seen = 0u64;
    let mut down_seen = 0u64;
    let mut down_batch: Vec<Down> = Vec::new();
    let mut up_batch: Vec<Up> = Vec::new();

    let waker = SelectWaker::new();
    down_rx.watch(&waker);
    up_rx.watch(&waker);

    loop {
        // Epoch is read before the drain sweep: anything arriving during or
        // after the sweep advances it, so the wait below cannot miss it.
        let epoch = waker.epoch();
        let mut down_open = true;
        let mut up_open = true;

        // Drain the downstream link one lock acquisition per burst, then
        // forward control and data to children. The drain repeats until the
        // link is empty or disconnected so a disconnect behind a buffered
        // burst surfaces this sweep, exactly as the old per-message loop
        // observed it.
        loop {
            match down_rx.try_drain(&mut down_batch, usize::MAX) {
                Ok(0) => break,
                Ok(_) => {}
                Err(TryRecvError::Disconnected) => {
                    down_open = false;
                    break;
                }
                // try_drain never reports Empty as an error (it returns
                // Ok(0)); if that ever changed, treating it as a disconnect
                // would silently kill an idle daemon.
                Err(TryRecvError::Empty) => break,
            }
            for msg in down_batch.drain(..) {
                down_seen += 1;
                if fault.crash_after_down.is_some_and(|n| down_seen > n) {
                    return;
                }
                match msg {
                    Down::Ctl(Control::OpenStream { stream, filter }) => {
                        streams.insert(stream, filter.clone());
                        for c in &child_down {
                            let _ = c.send(Down::Ctl(Control::OpenStream {
                                stream,
                                filter: filter.clone(),
                            }));
                        }
                    }
                    Down::Ctl(Control::Shutdown) => {
                        for c in &child_down {
                            let _ = c.send(Down::Ctl(Control::Shutdown));
                        }
                        return;
                    }
                    Down::Data(pkt) => {
                        for c in &child_down {
                            let _ = c.send(Down::Data(pkt.clone()));
                        }
                    }
                }
            }
        }

        // Drain the upstream link the same way: collect waves, aggregate
        // completed ones.
        loop {
            match up_rx.try_drain(&mut up_batch, usize::MAX) {
                Ok(0) => break,
                Ok(_) => {}
                Err(TryRecvError::Disconnected) => {
                    up_open = false;
                    break;
                }
                Err(TryRecvError::Empty) => break,
            }
            for up in up_batch.drain(..) {
                up_seen += 1;
                if fault.crash_after_up.is_some_and(|n| up_seen > n) {
                    return;
                }
                if fault.sever_child_slots.contains(&up.child_slot) {
                    continue;
                }
                let key = (up.packet.stream, up.packet.tag);
                let wave = waves.entry(key).or_default();
                wave.insert(up.child_slot, up.packet);
                if wave.len() == want {
                    let wave = waves.remove(&key).expect("just inserted");
                    let mut slots: Vec<(usize, Packet)> = wave.into_iter().collect();
                    slots.sort_by_key(|(slot, _)| *slot);
                    let inputs: Vec<Vec<u8>> = slots.into_iter().map(|(_, p)| p.payload).collect();
                    let filter = streams.get(&key.0).cloned().unwrap_or(FilterKind::Concat);
                    let payload = registry.apply(&filter, inputs);
                    if up_tx
                        .send(Up {
                            child_slot: my_slot,
                            packet: Packet::new(key.0, key.1, payload),
                        })
                        .is_err()
                    {
                        return;
                    }
                }
            }
        }

        // A disconnected link means the overlay is tearing down: mirror the
        // old select semantics (an `Err` arm returned from the loop).
        if !down_open || !up_open {
            return;
        }

        // Idle: block until either link signals readiness.
        waker.wait(epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// Instantiate an overlay with comm nodes on plain threads and run a
    /// closure per leaf on its own thread.
    fn run_overlay<R: Send + 'static>(
        spec: &str,
        registry: FilterRegistry,
        leaf_fn: impl Fn(LeafEndpoint) -> R + Send + Sync + 'static,
    ) -> (FrontEndpoint, Vec<std::thread::JoinHandle<R>>) {
        let spec = TopologySpec::parse(spec).unwrap();
        let overlay = Overlay::build(&spec, registry.clone());
        for harness in overlay.comm {
            let reg = registry.clone();
            std::thread::spawn(move || run_comm_node(harness, reg));
        }
        let leaf_fn = Arc::new(leaf_fn);
        let handles = overlay
            .leaves
            .into_iter()
            .map(|leaf| {
                let f = leaf_fn.clone();
                std::thread::spawn(move || f(leaf))
            })
            .collect();
        (overlay.front, handles)
    }

    #[test]
    fn hellos_flow_up_one_deep() {
        let (mut front, handles) = run_overlay("1x8", FilterRegistry::new(), |leaf| {
            leaf.send_hello().unwrap();
            // wait for shutdown so channels stay alive through the gather
            while !matches!(leaf.recv().unwrap(), LeafEvent::Shutdown) {}
        });
        let ids = front.await_connections(8, Duration::from_secs(5)).unwrap();
        assert_eq!(ids, (0..8).collect::<Vec<u32>>());
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn hellos_aggregate_through_comm_level() {
        let (mut front, handles) = run_overlay("1x4x16", FilterRegistry::new(), |leaf| {
            leaf.send_hello().unwrap();
            while !matches!(leaf.recv().unwrap(), LeafEvent::Shutdown) {}
        });
        assert_eq!(front.fanout(), 4, "front sees only its comm children");
        let ids = front.await_connections(16, Duration::from_secs(5)).unwrap();
        assert_eq!(ids.len(), 16);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn broadcast_reaches_all_leaves_and_sum_aggregates() {
        let (mut front, handles) = run_overlay("1x2x6", FilterRegistry::new(), |leaf| {
            // Wait for the work packet, reply with leaf_index+1 on the
            // same stream.
            loop {
                match leaf.recv().unwrap() {
                    LeafEvent::Data(pkt) => {
                        let value = (leaf.leaf_index as u64 + 1).to_be_bytes().to_vec();
                        leaf.send_up(pkt.stream, pkt.tag, value).unwrap();
                    }
                    LeafEvent::Shutdown => return,
                    LeafEvent::StreamOpened(_) => continue,
                }
            }
        });
        let stream = front.open_stream(FilterKind::SumU64).unwrap();
        front.broadcast(stream, 7, b"work".to_vec()).unwrap();
        let result = front.gather(stream, 7, Duration::from_secs(5)).unwrap();
        // sum of 1..=6 = 21
        assert_eq!(result.payload, 21u64.to_be_bytes());
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concat_collects_leaf_payloads_in_order() {
        let (mut front, handles) = run_overlay("1x3", FilterRegistry::new(), |leaf| loop {
            match leaf.recv().unwrap() {
                LeafEvent::Data(pkt) => {
                    leaf.send_up(pkt.stream, pkt.tag, vec![leaf.leaf_index as u8]).unwrap();
                }
                LeafEvent::Shutdown => return,
                LeafEvent::StreamOpened(_) => continue,
            }
        });
        let stream = front.open_stream(FilterKind::Concat).unwrap();
        front.broadcast(stream, 0, vec![]).unwrap();
        let result = front.gather(stream, 0, Duration::from_secs(5)).unwrap();
        assert_eq!(result.payload, vec![0, 1, 2]);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn custom_filter_applies_at_every_level() {
        // Count contributions: each internal node emits [sum of child
        // counts]; leaves emit [1]. With 1x2x4, the root should see 4.
        let mut registry = FilterRegistry::new();
        registry.register(
            1,
            Arc::new(|inputs| {
                let total: u64 = inputs
                    .iter()
                    .map(|i| {
                        let mut buf = [0u8; 8];
                        buf[8 - i.len().min(8)..].copy_from_slice(&i[..i.len().min(8)]);
                        u64::from_be_bytes(buf)
                    })
                    .sum();
                total.to_be_bytes().to_vec()
            }),
        );
        let (mut front, handles) = run_overlay("1x2x4", registry, |leaf| loop {
            match leaf.recv().unwrap() {
                LeafEvent::Data(pkt) => {
                    leaf.send_up(pkt.stream, pkt.tag, 1u64.to_be_bytes().to_vec()).unwrap();
                }
                LeafEvent::Shutdown => return,
                LeafEvent::StreamOpened(_) => continue,
            }
        });
        let stream = front.open_stream(FilterKind::Custom(1)).unwrap();
        front.broadcast(stream, 0, vec![]).unwrap();
        let result = front.gather(stream, 0, Duration::from_secs(5)).unwrap();
        assert_eq!(result.payload, 4u64.to_be_bytes());
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn multiple_waves_interleave_by_tag() {
        let (mut front, handles) = run_overlay("1x4", FilterRegistry::new(), |leaf| {
            // Answer two waves, deliberately answering wave 2 first for
            // even leaves to exercise wave bookkeeping.
            let mut packets = Vec::new();
            loop {
                match leaf.recv().unwrap() {
                    LeafEvent::Data(pkt) => {
                        packets.push(pkt);
                        if packets.len() == 2 {
                            break;
                        }
                    }
                    LeafEvent::Shutdown => return,
                    LeafEvent::StreamOpened(_) => continue,
                }
            }
            if leaf.leaf_index % 2 == 0 {
                packets.reverse();
            }
            for pkt in packets {
                leaf.send_up(pkt.stream, pkt.tag, vec![leaf.leaf_index as u8]).unwrap();
            }
            while !matches!(leaf.recv().unwrap(), LeafEvent::Shutdown) {}
        });
        let stream = front.open_stream(FilterKind::Concat).unwrap();
        front.broadcast(stream, 1, vec![]).unwrap();
        front.broadcast(stream, 2, vec![]).unwrap();
        let w2 = front.gather(stream, 2, Duration::from_secs(5)).unwrap();
        let w1 = front.gather(stream, 1, Duration::from_secs(5)).unwrap();
        assert_eq!(w1.payload, vec![0, 1, 2, 3]);
        assert_eq!(w2.payload, vec![0, 1, 2, 3]);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn gather_times_out_when_a_leaf_is_silent() {
        let (mut front, handles) = run_overlay("1x3", FilterRegistry::new(), |leaf| loop {
            match leaf.recv().unwrap() {
                LeafEvent::Data(pkt) => {
                    if leaf.leaf_index != 2 {
                        leaf.send_up(pkt.stream, pkt.tag, vec![1]).unwrap();
                    }
                }
                LeafEvent::Shutdown => return,
                LeafEvent::StreamOpened(_) => continue,
            }
        });
        let stream = front.open_stream(FilterKind::Concat).unwrap();
        front.broadcast(stream, 0, vec![]).unwrap();
        let err = front.gather(stream, 0, Duration::from_millis(100)).unwrap_err();
        assert_eq!(err, TbonError::Timeout);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    /// Like [`run_overlay`] but with per-comm-daemon fault schedules
    /// (indexed by position in `Overlay::comm`).
    fn run_overlay_with_faults<R: Send + 'static>(
        spec: &str,
        registry: FilterRegistry,
        faults: Vec<(usize, CommFault)>,
        leaf_fn: impl Fn(LeafEndpoint) -> R + Send + Sync + 'static,
    ) -> (FrontEndpoint, Vec<std::thread::JoinHandle<R>>) {
        let spec = TopologySpec::parse(spec).unwrap();
        let overlay = Overlay::build(&spec, registry.clone());
        for (i, harness) in overlay.comm.into_iter().enumerate() {
            let reg = registry.clone();
            let fault = faults
                .iter()
                .find(|(idx, _)| *idx == i)
                .map(|(_, f)| f.clone())
                .unwrap_or_default();
            std::thread::spawn(move || run_comm_node_with_faults(harness, reg, fault));
        }
        let leaf_fn = Arc::new(leaf_fn);
        let handles = overlay
            .leaves
            .into_iter()
            .map(|leaf| {
                let f = leaf_fn.clone();
                std::thread::spawn(move || f(leaf))
            })
            .collect();
        (overlay.front, handles)
    }

    fn hello_then_wait_leaf() -> impl Fn(LeafEndpoint) + Send + Sync + 'static {
        |leaf: LeafEndpoint| {
            let _ = leaf.send_hello();
            while matches!(leaf.recv(), Ok(ev) if ev != LeafEvent::Shutdown) {}
        }
    }

    #[test]
    fn comm_crash_mid_aggregation_times_out_upstream() {
        // 1x2x8: each comm daemon aggregates 4 leaf hellos. Comm 0 crashes
        // after its first up-packet — its wave never completes, so the
        // front-end gather for the connect stream must time out rather
        // than deliver a partial aggregate.
        let (mut front, handles) = run_overlay_with_faults(
            "1x2x8",
            FilterRegistry::new(),
            vec![(0, CommFault::none().crash_after_up(1))],
            hello_then_wait_leaf(),
        );
        let err = front.await_connections(8, Duration::from_millis(200)).unwrap_err();
        assert_eq!(err, TbonError::Timeout);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn severed_child_link_surfaces_as_missing_leaves() {
        // Severing one leaf link partitions that subtree away: waves still
        // complete (the daemon no longer waits for the severed child), but
        // the front end sees fewer hellos than leaves — a clean, attributable
        // error rather than a hang.
        let (mut front, handles) = run_overlay_with_faults(
            "1x2x8",
            FilterRegistry::new(),
            vec![(1, CommFault::none().sever_child(2))],
            hello_then_wait_leaf(),
        );
        let err = front.await_connections(8, Duration::from_secs(5)).unwrap_err();
        match err {
            TbonError::LaunchFailed(msg) => {
                assert!(msg.contains("expected 8 leaf hellos, got 7"), "{msg}")
            }
            other => panic!("expected LaunchFailed, got {other:?}"),
        }
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn comm_crash_on_downstream_traffic_kills_broadcast_path() {
        // Comm 0 dies as soon as the second down-message arrives: the
        // connect wave still aggregates, but the broadcast after it never
        // reaches comm 0's leaves, so the gather times out.
        let (mut front, handles) = run_overlay_with_faults(
            "1x2x6",
            FilterRegistry::new(),
            vec![(0, CommFault::none().crash_after_down(1))],
            |leaf: LeafEndpoint| {
                let _ = leaf.send_hello();
                loop {
                    match leaf.recv() {
                        Ok(LeafEvent::Data(pkt)) => {
                            let _ = leaf.send_up(pkt.stream, pkt.tag, vec![leaf.leaf_index as u8]);
                        }
                        Ok(LeafEvent::Shutdown) | Err(_) => return,
                        Ok(LeafEvent::StreamOpened(_)) => continue,
                    }
                }
            },
        );
        front.await_connections(6, Duration::from_secs(5)).unwrap();
        let stream = front.open_stream(FilterKind::Concat).unwrap();
        front.broadcast(stream, 0, vec![]).unwrap();
        let err = front.gather(stream, 0, Duration::from_millis(200)).unwrap_err();
        assert_eq!(err, TbonError::Timeout);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn severing_an_out_of_range_slot_is_inert() {
        // Slot 99 names no child: the daemon must still wait for all of
        // its real children rather than aggregate a partial wave.
        let (mut front, handles) = run_overlay_with_faults(
            "1x2x8",
            FilterRegistry::new(),
            vec![(0, CommFault::none().sever_child(99))],
            hello_then_wait_leaf(),
        );
        let ids = front.await_connections(8, Duration::from_secs(5)).unwrap();
        assert_eq!(ids.len(), 8);
        front.shutdown();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn fault_free_schedule_is_inert() {
        assert!(CommFault::none().is_none());
        assert!(!CommFault::none().crash_after_up(3).is_none());
        assert!(!CommFault::none().sever_child(0).is_none());
        // run_comm_node delegates to the faulty variant with a none fault;
        // the existing happy-path tests above exercise that wrapper.
    }

    #[test]
    fn unknown_stream_rejected() {
        let spec = TopologySpec::parse("1x2").unwrap();
        let mut overlay = Overlay::build(&spec, FilterRegistry::new());
        assert!(matches!(overlay.front.broadcast(99, 0, vec![]), Err(TbonError::NoSuchStream(99))));
        assert!(matches!(
            overlay.front.gather(99, 0, Duration::from_millis(1)),
            Err(TbonError::NoSuchStream(99))
        ));
    }
}
