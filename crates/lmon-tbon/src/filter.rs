//! Aggregation filters applied at internal tree nodes.
//!
//! MRNet's defining feature: packets flowing *up* the tree are combined at
//! every internal node, so the front end receives one aggregated packet per
//! wave instead of N. STAT's call-graph-prefix-tree merge is registered as
//! a custom filter by `lmon-tools::stat`.

use std::collections::HashMap;
use std::sync::Arc;

/// A custom aggregation function: child payloads in, one payload out.
pub type FilterFn = Arc<dyn Fn(Vec<Vec<u8>>) -> Vec<u8> + Send + Sync>;

/// Which aggregation a stream applies at internal nodes.
#[derive(Clone)]
pub enum FilterKind {
    /// Concatenate child payloads in child order.
    Concat,
    /// Sum payloads interpreted as big-endian u64.
    SumU64,
    /// Elementwise max of payloads interpreted as big-endian u64.
    MaxU64,
    /// Forward the first child payload (synchronization only).
    WaitForAll,
    /// A custom filter registered in the overlay's [`FilterRegistry`].
    Custom(u32),
}

impl std::fmt::Debug for FilterKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FilterKind::Concat => write!(f, "Concat"),
            FilterKind::SumU64 => write!(f, "SumU64"),
            FilterKind::MaxU64 => write!(f, "MaxU64"),
            FilterKind::WaitForAll => write!(f, "WaitForAll"),
            FilterKind::Custom(id) => write!(f, "Custom({id})"),
        }
    }
}

impl PartialEq for FilterKind {
    fn eq(&self, other: &Self) -> bool {
        matches!(
            (self, other),
            (FilterKind::Concat, FilterKind::Concat)
                | (FilterKind::SumU64, FilterKind::SumU64)
                | (FilterKind::MaxU64, FilterKind::MaxU64)
                | (FilterKind::WaitForAll, FilterKind::WaitForAll)
        ) || matches!((self, other), (FilterKind::Custom(a), FilterKind::Custom(b)) if a == b)
    }
}

impl Eq for FilterKind {}

/// Custom filters shared by every node of one overlay.
///
/// Registered before instantiation — mirroring MRNet, where filter shared
/// objects must be installed on every host before daemons load them.
#[derive(Clone, Default)]
pub struct FilterRegistry {
    filters: HashMap<u32, FilterFn>,
}

impl FilterRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        FilterRegistry::default()
    }

    /// Register a custom filter under `id`.
    pub fn register(&mut self, id: u32, f: FilterFn) {
        self.filters.insert(id, f);
    }

    /// Look up a custom filter.
    pub fn get(&self, id: u32) -> Option<FilterFn> {
        self.filters.get(&id).cloned()
    }

    /// Apply a filter kind to child payloads.
    pub fn apply(&self, kind: &FilterKind, inputs: Vec<Vec<u8>>) -> Vec<u8> {
        match kind {
            FilterKind::Concat => {
                let mut out = Vec::with_capacity(inputs.iter().map(Vec::len).sum());
                for i in inputs {
                    out.extend_from_slice(&i);
                }
                out
            }
            FilterKind::SumU64 => {
                let sum: u64 = inputs.iter().map(|b| parse_u64(b)).sum();
                sum.to_be_bytes().to_vec()
            }
            FilterKind::MaxU64 => {
                let max = inputs.iter().map(|b| parse_u64(b)).max().unwrap_or(0);
                max.to_be_bytes().to_vec()
            }
            FilterKind::WaitForAll => inputs.into_iter().next().unwrap_or_default(),
            FilterKind::Custom(id) => match self.get(*id) {
                Some(f) => f(inputs),
                None => Vec::new(),
            },
        }
    }
}

fn parse_u64(bytes: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = bytes.len().min(8);
    buf[8 - n..].copy_from_slice(&bytes[bytes.len() - n..]);
    u64::from_be_bytes(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concat_preserves_child_order() {
        let reg = FilterRegistry::new();
        let out = reg.apply(&FilterKind::Concat, vec![vec![1, 2], vec![3], vec![4, 5]]);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn sum_and_max_parse_u64() {
        let reg = FilterRegistry::new();
        let a = 100u64.to_be_bytes().to_vec();
        let b = 42u64.to_be_bytes().to_vec();
        assert_eq!(
            reg.apply(&FilterKind::SumU64, vec![a.clone(), b.clone()]),
            142u64.to_be_bytes()
        );
        assert_eq!(reg.apply(&FilterKind::MaxU64, vec![a, b]), 100u64.to_be_bytes());
    }

    #[test]
    fn short_payloads_zero_extend() {
        assert_eq!(parse_u64(&[1]), 1);
        assert_eq!(parse_u64(&[1, 0]), 256);
        assert_eq!(parse_u64(&[]), 0);
    }

    #[test]
    fn custom_filters_dispatch_by_id() {
        let mut reg = FilterRegistry::new();
        reg.register(7, Arc::new(|inputs| vec![inputs.len() as u8]));
        assert_eq!(reg.apply(&FilterKind::Custom(7), vec![vec![], vec![], vec![]]), vec![3]);
        assert_eq!(
            reg.apply(&FilterKind::Custom(99), vec![vec![1]]),
            Vec::<u8>::new(),
            "unknown filter degrades to empty"
        );
    }

    #[test]
    fn filter_kind_equality() {
        assert_eq!(FilterKind::Concat, FilterKind::Concat);
        assert_ne!(FilterKind::Concat, FilterKind::SumU64);
        assert_eq!(FilterKind::Custom(1), FilterKind::Custom(1));
        assert_ne!(FilterKind::Custom(1), FilterKind::Custom(2));
    }
}
