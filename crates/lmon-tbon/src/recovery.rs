//! Self-healing overlay plumbing: the shared route table, the recovery
//! control plane, orphan-adoption planning, and overlay health statistics.
//!
//! DESIGN.md §9 describes the protocol; the short version:
//!
//! * every node gets an out-of-band **control mailbox** (the stand-in for
//!   LaunchMON's FE↔daemon side channels) over which the front end can
//!   re-parent orphans even when their tree path is severed;
//! * the [`RouteTable`] is the front end's authoritative picture of the
//!   overlay: current parent/child assignments, liveness flags, and the
//!   link handles repairs need;
//! * repairs are **epoch-stamped**: every repair bumps the overlay epoch,
//!   and packets carrying an older epoch are counted and dropped rather
//!   than mis-routed or aggregated into the wrong wave;
//! * [`plan_adoption`] chooses adopters for a dead node's orphans —
//!   grandparent adoption, split across the dead node's siblings when
//!   fan-out bounds would otherwise be violated.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crossbeam_channel::Sender;
use parking_lot::Mutex;

use crate::packet::{Down, Up};
use crate::spec::{NodePos, TopologySpec};

/// A live link to a (current) child: its position plus the sender half of
/// its down channel.
#[derive(Debug, Clone)]
pub(crate) struct ChildLink {
    pub pos: NodePos,
    pub down: Sender<Down>,
}

/// Out-of-band commands the front end sends over a node's control mailbox.
#[derive(Debug, Clone)]
pub(crate) enum RecoveryCmd {
    /// Child-set surgery at `epoch`: drop dead children, adopt orphans.
    Reconfigure { epoch: u64, drop: Vec<NodePos>, adopt: Vec<ChildLink> },
    /// Re-parent: route future up-traffic to `up` (owned by `parent`),
    /// stamping `epoch`.
    Rewire { epoch: u64, parent: NodePos, up: Sender<Up> },
    /// Deterministic crash injection (the bench/chaos kill switch): the
    /// daemon runs its crash fault path as if a `CommFault` fired.
    Crash,
    /// Silent-death injection (`kill -9` without the crash path's FIN): the
    /// daemon exits without LinkDown/ChildGone notices. Only background
    /// suspicion (DESIGN.md §12) can detect this.
    Halt,
    /// Planned teardown: stop as soon as every in-flight wave has flushed,
    /// close child links, and confirm with an `UpKind::Drained` notice
    /// instead of the crash path's `ChildGone`.
    Drain,
    /// Enroll in background failure suspicion: send this node's position on
    /// `beat` every `interval` (plus once immediately), over a channel the
    /// monitor thread timestamps on arrival.
    StartBeats {
        /// Arrival-history channel into the suspicion monitor.
        beat: Sender<NodePos>,
        /// Nominal inter-beat interval.
        interval: Duration,
    },
    /// Tear down. Delivered out of band so orphans whose tree path died
    /// with their parent still exit promptly.
    Shutdown,
}

// ---------------------------------------------------------------------------
// Route table
// ---------------------------------------------------------------------------

pub(crate) struct RouteNode {
    pub alive: bool,
    pub parent: Option<NodePos>,
    pub children: Vec<NodePos>,
    pub down: Option<Sender<Down>>,
    pub ctl: Option<Sender<RecoveryCmd>>,
    /// Sender half of the up channel *into* this node (internal nodes and
    /// the root only): what a rewired child needs to re-attach here.
    pub up: Option<Sender<Up>>,
}

pub(crate) struct RouteInner {
    pub epoch: u64,
    /// Per-level fan-out of the original spec (max children of any node at
    /// that level); adoption bounds derive from it.
    pub base_fanout: Vec<usize>,
    pub nodes: HashMap<NodePos, RouteNode>,
    /// Idle hot spares (routed, alive, but holding no tree position yet).
    /// Consumed front-to-back by repairs; activated spares leave the pool
    /// and become ordinary interior nodes.
    pub spare_pool: Vec<NodePos>,
}

/// The front end's authoritative view of the overlay: current topology,
/// liveness, epoch, and the link handles repairs need.
///
/// Built by [`crate::overlay::Overlay::build`] and shared (behind an `Arc`)
/// with every communication daemon, which uses it for exactly one thing:
/// marking itself dead on the deterministic crash path. All routing
/// decisions are the front end's.
pub struct RouteTable {
    inner: Mutex<RouteInner>,
}

impl RouteTable {
    pub(crate) fn new(spec: &TopologySpec) -> Self {
        let base_fanout = (0..spec.depth() as u32).map(|l| spec.base_fanout(l)).collect::<Vec<_>>();
        let mut nodes = HashMap::new();
        let root = NodePos { level: 0, index: 0 };
        let mut all = vec![root];
        all.extend(spec.comm_positions());
        all.extend(spec.leaf_positions());
        for pos in all {
            nodes.insert(
                pos,
                RouteNode {
                    alive: true,
                    parent: spec.parent(pos),
                    children: spec.children(pos),
                    down: None,
                    ctl: None,
                    up: None,
                },
            );
        }
        // Spares are routed and alive from the start, but parentless and
        // childless: no tree traffic reaches them until a repair activates
        // one.
        let spare_pool = spec.spare_positions();
        for &pos in &spare_pool {
            nodes.insert(
                pos,
                RouteNode {
                    alive: true,
                    parent: None,
                    children: Vec::new(),
                    down: None,
                    ctl: None,
                    up: None,
                },
            );
        }
        RouteTable { inner: Mutex::new(RouteInner { epoch: 0, base_fanout, nodes, spare_pool }) }
    }

    pub(crate) fn lock(&self) -> parking_lot::MutexGuard<'_, RouteInner> {
        self.inner.lock()
    }

    /// The current overlay epoch (bumped by every repair).
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Whether `pos` is still routed and believed alive.
    pub fn is_alive(&self, pos: NodePos) -> bool {
        self.inner.lock().nodes.get(&pos).map(|n| n.alive).unwrap_or(false)
    }

    /// Whether `pos` is still in the route table at all (dead-but-unrepaired
    /// nodes are; repaired-away nodes are not).
    pub(crate) fn is_routed(&self, pos: NodePos) -> bool {
        self.inner.lock().nodes.contains_key(&pos)
    }

    /// Nodes currently marked dead but not yet repaired away.
    pub fn dead_nodes(&self) -> Vec<NodePos> {
        let inner = self.inner.lock();
        let mut dead: Vec<NodePos> =
            inner.nodes.iter().filter(|(_, n)| !n.alive).map(|(p, _)| *p).collect();
        dead.sort_unstable();
        dead
    }

    /// Number of routed nodes currently believed alive (excluding the root).
    pub fn live_count(&self) -> usize {
        let inner = self.inner.lock();
        inner.nodes.iter().filter(|(p, n)| p.level != 0 && n.alive).count()
    }

    /// Idle hot spares still available to repairs, in position order
    /// (dead spares are skipped — a spare can die like any other daemon).
    pub fn idle_spares(&self) -> Vec<NodePos> {
        let inner = self.inner.lock();
        let mut spares: Vec<NodePos> = inner
            .spare_pool
            .iter()
            .copied()
            .filter(|p| inner.nodes.get(p).map(|n| n.alive).unwrap_or(false))
            .collect();
        spares.sort_unstable();
        spares
    }

    /// The node's *current* parent (None for the root or unrouted nodes).
    pub fn current_parent(&self, pos: NodePos) -> Option<NodePos> {
        self.inner.lock().nodes.get(&pos).and_then(|n| n.parent)
    }

    /// The node's *current* children, in position order.
    pub fn current_children(&self, pos: NodePos) -> Vec<NodePos> {
        let mut c =
            self.inner.lock().nodes.get(&pos).map(|n| n.children.clone()).unwrap_or_default();
        c.sort_unstable();
        c
    }

    /// Mark `pos` dead; returns `true` when this call made the transition
    /// (so a death is detected exactly once no matter how many notices
    /// race in).
    pub(crate) fn mark_dead(&self, pos: NodePos) -> bool {
        let mut inner = self.inner.lock();
        match inner.nodes.get_mut(&pos) {
            Some(n) if n.alive => {
                n.alive = false;
                true
            }
            _ => false,
        }
    }

    /// Control senders for every routed node (teardown fan-out).
    pub(crate) fn all_ctl_senders(&self) -> Vec<Sender<RecoveryCmd>> {
        self.inner.lock().nodes.values().filter_map(|n| n.ctl.clone()).collect()
    }
}

// ---------------------------------------------------------------------------
// Adoption planning
// ---------------------------------------------------------------------------

/// A candidate parent for orphan adoption.
#[derive(Debug, Clone)]
pub struct AdoptCandidate {
    /// The candidate's position.
    pub pos: NodePos,
    /// Its current child count.
    pub load: usize,
    /// Soft fan-out bound: exceeded only when every candidate is already at
    /// its bound — liveness over shape. With no spare pool this is 2× the
    /// level's original fan-out; when idle spares exist it is the *designed*
    /// fan-out, because a spare can absorb the overflow instead (see
    /// [`adoption_candidates`]).
    pub bound: usize,
    /// Preference tier, lowest first. Without spares: 0 = sibling of the
    /// dead node, 1 = the grandparent. With an idle spare pool: 0 = sibling
    /// (at designed fan-out), 1..=N = the N idle spares in pool order (one
    /// tier each, so a repair packs a single spare before tapping the
    /// next), N+1 = the grandparent.
    pub tier: u8,
}

/// Build the tiered candidate list for repairing one dead interior node.
///
/// Pure — the spare-preference policy is property-testable in isolation.
/// `siblings` are the dead node's live siblings as `(pos, current load)`,
/// `spares` the idle pool, `level_fanout` the designed fan-out at the dead
/// node's level, and `grandparent` the fallback ancestor as
/// `(pos, load, bound)`.
///
/// With at least one idle spare, siblings are bounded at the *designed*
/// fan-out (tier 0) and spares absorb what doesn't fit (one tier each in
/// pool order, load 0, same designed bound — so one spare is packed to the
/// designed fan-out before the next is touched), and a repair never
/// inflates a survivor to the 2× soft bound while capacity sits idle; the
/// grandparent remains the last resort (the tier after the last spare).
/// With an empty pool the list degenerates to exactly the original plan:
/// siblings at the 2× soft bound (tier 0), then the grandparent (tier 1).
pub fn adoption_candidates(
    siblings: &[(NodePos, usize)],
    spares: &[NodePos],
    level_fanout: usize,
    grandparent: (NodePos, usize, usize),
) -> Vec<AdoptCandidate> {
    let designed = level_fanout.max(1);
    let (g_pos, g_load, g_bound) = grandparent;
    let mut out = Vec::with_capacity(siblings.len() + spares.len() + 1);
    if spares.is_empty() {
        for &(pos, load) in siblings {
            out.push(AdoptCandidate { pos, load, bound: 2 * designed, tier: 0 });
        }
        out.push(AdoptCandidate { pos: g_pos, load: g_load, bound: g_bound, tier: 1 });
    } else {
        for &(pos, load) in siblings {
            out.push(AdoptCandidate { pos, load, bound: designed, tier: 0 });
        }
        // Each spare gets its own tier so a repair packs one spare up to the
        // designed fan-out (1:1 replacement of the dead node) before tapping
        // the next, instead of round-robining orphans across the whole pool.
        for (k, &pos) in spares.iter().enumerate() {
            let tier = u8::try_from(k + 1).unwrap_or(u8::MAX - 1);
            out.push(AdoptCandidate { pos, load: 0, bound: designed, tier });
        }
        let g_tier = u8::try_from(spares.len() + 1).unwrap_or(u8::MAX);
        out.push(AdoptCandidate { pos: g_pos, load: g_load, bound: g_bound, tier: g_tier });
    }
    out
}

/// Assign each orphan a new parent.
///
/// Deterministic and purely functional so the same failure always heals
/// into the same shape: each orphan (in position order) goes to the
/// under-bound candidate with the fewest children, siblings before the
/// grandparent, position order breaking ties; when every candidate is at
/// its bound the least-loaded one is used anyway.
pub fn plan_adoption(
    orphans: &[NodePos],
    candidates: &[AdoptCandidate],
) -> Vec<(NodePos, NodePos)> {
    if candidates.is_empty() {
        return Vec::new();
    }
    let mut loads: Vec<usize> = candidates.iter().map(|c| c.load).collect();
    let mut out = Vec::with_capacity(orphans.len());
    for &orphan in orphans {
        let pick = (0..candidates.len())
            .min_by_key(|&i| {
                let c = &candidates[i];
                let over = loads[i] >= c.bound;
                // Tier preference only applies while under bound: once a
                // candidate is over its bound, pure load balance decides
                // (the documented fallback — bounds are already lost, so
                // pile-up on a preferred tier would only make it worse).
                let tier = if over { 0 } else { c.tier };
                (over, tier, loads[i], i)
            })
            .expect("non-empty candidates");
        loads[pick] += 1;
        out.push((orphan, candidates[pick].pos));
    }
    out
}

// ---------------------------------------------------------------------------
// Recovery events and reports
// ---------------------------------------------------------------------------

/// A state transition in the overlay's health, recorded at the front end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryEvent {
    /// A planned drain began: the node keeps flushing in-flight waves and
    /// will confirm with a `Drained` notice; this is *not* a failure.
    Draining {
        /// The node being drained.
        node: NodePos,
        /// The epoch the drain started under.
        epoch: u64,
    },
    /// A node was detected dead; its subtree is orphaned until repaired.
    Degraded {
        /// The dead node.
        dead: NodePos,
        /// How many direct children it orphaned.
        orphans: usize,
        /// The epoch the overlay was degraded *from*.
        epoch: u64,
    },
    /// An orphan was re-parented during a repair.
    Adopted {
        /// The re-parented node.
        orphan: NodePos,
        /// Its new parent.
        adopter: NodePos,
        /// The repair's (new) epoch.
        epoch: u64,
    },
    /// A repair completed: the overlay is whole again under a new epoch.
    Healed {
        /// The node that was repaired away.
        repaired: NodePos,
        /// The new overlay epoch.
        epoch: u64,
    },
}

/// What one [`crate::overlay::FrontEndpoint::repair`] call did.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// The dead node that was repaired away.
    pub dead: NodePos,
    /// The new overlay epoch the repair established.
    pub epoch: u64,
    /// `(orphan, adopter)` pairs, in orphan position order.
    pub adoptions: Vec<(NodePos, NodePos)>,
    /// The live ancestor whose subtree absorbed the orphans.
    pub grandparent: NodePos,
    /// Hot spares activated by this repair (attached under the
    /// grandparent), in position order. Empty when siblings had room or the
    /// pool was empty.
    pub spares_used: Vec<NodePos>,
}

// ---------------------------------------------------------------------------
// Stats
// ---------------------------------------------------------------------------

/// Shared overlay health counters (lock-free, incremented by every node).
#[derive(Debug, Default)]
pub struct OverlayStats {
    stale_packets_dropped: AtomicU64,
    stale_waves_dropped: AtomicU64,
    severed_packets_discarded: AtomicU64,
    link_down_notices: AtomicU64,
    deaths_detected: AtomicU64,
    pings_sent: AtomicU64,
    pongs_received: AtomicU64,
    repairs_completed: AtomicU64,
    orphans_adopted: AtomicU64,
    drains_completed: AtomicU64,
    spares_registered: AtomicU64,
    spares_activated: AtomicU64,
    beats_received: AtomicU64,
    suspicions_raised: AtomicU64,
    suspicion_deaths: AtomicU64,
    upgrades_completed: AtomicU64,
    upgrades_failed: AtomicU64,
}

macro_rules! stat {
    ($inc:ident, $field:ident) => {
        pub(crate) fn $inc(&self, n: u64) {
            self.$field.fetch_add(n, Ordering::Relaxed);
        }
    };
}

impl OverlayStats {
    stat!(add_stale_packets, stale_packets_dropped);
    stat!(add_stale_waves, stale_waves_dropped);
    stat!(add_severed_discarded, severed_packets_discarded);
    stat!(add_link_down, link_down_notices);
    stat!(add_deaths, deaths_detected);
    stat!(add_pings, pings_sent);
    stat!(add_pongs, pongs_received);
    stat!(add_repairs, repairs_completed);
    stat!(add_adopted, orphans_adopted);
    stat!(add_drains, drains_completed);
    stat!(add_spares_registered, spares_registered);
    stat!(add_spares_activated, spares_activated);
    stat!(add_beats, beats_received);
    stat!(add_suspicions, suspicions_raised);
    stat!(add_suspicion_deaths, suspicion_deaths);
    stat!(add_upgrades, upgrades_completed);
    stat!(add_upgrades_failed, upgrades_failed);

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> OverlayStatsSnapshot {
        OverlayStatsSnapshot {
            stale_packets_dropped: self.stale_packets_dropped.load(Ordering::Relaxed),
            stale_waves_dropped: self.stale_waves_dropped.load(Ordering::Relaxed),
            severed_packets_discarded: self.severed_packets_discarded.load(Ordering::Relaxed),
            link_down_notices: self.link_down_notices.load(Ordering::Relaxed),
            deaths_detected: self.deaths_detected.load(Ordering::Relaxed),
            pings_sent: self.pings_sent.load(Ordering::Relaxed),
            pongs_received: self.pongs_received.load(Ordering::Relaxed),
            repairs_completed: self.repairs_completed.load(Ordering::Relaxed),
            orphans_adopted: self.orphans_adopted.load(Ordering::Relaxed),
            drains_completed: self.drains_completed.load(Ordering::Relaxed),
            spares_registered: self.spares_registered.load(Ordering::Relaxed),
            spares_activated: self.spares_activated.load(Ordering::Relaxed),
            beats_received: self.beats_received.load(Ordering::Relaxed),
            suspicions_raised: self.suspicions_raised.load(Ordering::Relaxed),
            suspicion_deaths: self.suspicion_deaths.load(Ordering::Relaxed),
            upgrades_completed: self.upgrades_completed.load(Ordering::Relaxed),
            upgrades_failed: self.upgrades_failed.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`OverlayStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OverlayStatsSnapshot {
    /// Up-packets dropped because they carried a pre-repair epoch.
    pub stale_packets_dropped: u64,
    /// In-progress aggregation waves discarded at an epoch bump.
    pub stale_waves_dropped: u64,
    /// Up-packets discarded because their link was severed.
    pub severed_packets_discarded: u64,
    /// Deterministic link-close notices sent (crash fault path + severs).
    pub link_down_notices: u64,
    /// Node deaths detected at the front end.
    pub deaths_detected: u64,
    /// Heartbeat probes broadcast by the front end.
    pub pings_sent: u64,
    /// Heartbeat replies that reached the front end.
    pub pongs_received: u64,
    /// Repairs completed (== epoch bumps).
    pub repairs_completed: u64,
    /// Orphans re-parented across all repairs.
    pub orphans_adopted: u64,
    /// Planned drains that flushed and confirmed (never counted as deaths).
    pub drains_completed: u64,
    /// Hot spares registered at overlay build time.
    pub spares_registered: u64,
    /// Hot spares consumed by repairs (idle = registered − activated).
    pub spares_activated: u64,
    /// Suspicion heartbeats that reached the monitor thread.
    pub beats_received: u64,
    /// Alive→Suspect transitions raised by phi-accrual suspicion.
    pub suspicions_raised: u64,
    /// Nodes declared dead by suspicion (φ crossed the dead threshold).
    pub suspicion_deaths: u64,
    /// Rolling-upgrade steps that drained, re-adopted, and verified.
    pub upgrades_completed: u64,
    /// Rolling-upgrade steps that failed drain or post-heal verification.
    pub upgrades_failed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pos(level: u32, index: u32) -> NodePos {
        NodePos { level, index }
    }

    fn cand(index: u32, load: usize, bound: usize, tier: u8) -> AdoptCandidate {
        AdoptCandidate { pos: pos(1, index), load, bound, tier }
    }

    #[test]
    fn adoption_splits_across_least_loaded_siblings_first() {
        // 8 orphans, 7 siblings all at load 8 (bound 16), grandparent last.
        let orphans: Vec<NodePos> = (0..8).map(|i| pos(2, i)).collect();
        let mut candidates: Vec<AdoptCandidate> =
            [0, 1, 2, 4, 5, 6, 7].iter().map(|&i| cand(i, 8, 16, 0)).collect();
        candidates.push(AdoptCandidate { pos: pos(0, 0), load: 7, bound: 16, tier: 1 });
        let plan = plan_adoption(&orphans, &candidates);
        // Siblings take one orphan each (round-robin by load), the eighth
        // wraps to the first sibling; the grandparent takes none even
        // though it is the least loaded — tier order wins.
        let adopters: Vec<u32> = plan.iter().map(|(_, a)| a.index).collect();
        assert_eq!(adopters, vec![0, 1, 2, 4, 5, 6, 7, 0]);
        assert!(plan.iter().all(|(_, a)| a.level == 1), "grandparent not used");
    }

    #[test]
    fn adoption_overflows_to_grandparent_when_siblings_full() {
        let orphans: Vec<NodePos> = (0..2).map(|i| pos(2, i)).collect();
        let candidates = vec![
            cand(0, 4, 4, 0), // at bound
            AdoptCandidate { pos: pos(0, 0), load: 1, bound: 4, tier: 1 },
        ];
        let plan = plan_adoption(&orphans, &candidates);
        assert_eq!(plan[0].1, pos(0, 0));
        assert_eq!(plan[1].1, pos(0, 0));
    }

    #[test]
    fn adoption_exceeds_bounds_rather_than_stranding_orphans() {
        let orphans: Vec<NodePos> = (0..3).map(|i| pos(2, i)).collect();
        let candidates = vec![cand(0, 5, 4, 0), cand(1, 4, 4, 0)];
        let plan = plan_adoption(&orphans, &candidates);
        assert_eq!(plan.len(), 3, "every orphan is placed");
        // Least-loaded-first even when everyone is over bound.
        assert_eq!(plan[0].1, pos(1, 1));
    }

    #[test]
    fn overloaded_candidates_fall_back_to_pure_load_balance() {
        // Both candidates over bound: the documented fallback is
        // least-loaded, even when the lighter one is the lower-preference
        // grandparent — piling onto a preferred tier once bounds are lost
        // would only make the overload worse.
        let orphans = vec![pos(2, 0)];
        let candidates =
            vec![cand(0, 10, 4, 0), AdoptCandidate { pos: pos(0, 0), load: 5, bound: 4, tier: 1 }];
        let plan = plan_adoption(&orphans, &candidates);
        assert_eq!(plan[0].1, pos(0, 0), "least-loaded wins once bounds are lost");
    }

    #[test]
    fn adoption_is_deterministic() {
        let orphans: Vec<NodePos> = (0..5).map(|i| pos(2, i)).collect();
        let candidates = vec![cand(0, 3, 8, 0), cand(1, 3, 8, 0), cand(2, 3, 8, 0)];
        let a = plan_adoption(&orphans, &candidates);
        let b = plan_adoption(&orphans, &candidates);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_candidates_strand_nothing_quietly() {
        assert!(plan_adoption(&[pos(2, 0)], &[]).is_empty());
    }

    #[test]
    fn spare_candidates_prefer_siblings_at_designed_fanout_then_spares() {
        // Dead node had 4 children; siblings sit at the designed fan-out of
        // 4 already. With two idle spares, the whole subtree lands on the
        // first spare — nobody is inflated to the 2x soft bound.
        let orphans: Vec<NodePos> = (0..4).map(|i| pos(2, i)).collect();
        let siblings: Vec<(NodePos, usize)> = (0..3).map(|i| (pos(1, i), 4)).collect();
        let spares = vec![pos(1, 8), pos(1, 9)];
        let cands = adoption_candidates(&siblings, &spares, 4, (pos(0, 0), 4, 8));
        let plan = plan_adoption(&orphans, &cands);
        assert!(plan.iter().all(|(_, a)| *a == pos(1, 8)), "first spare absorbs all: {plan:?}");

        // A sibling with designed-fanout headroom still wins over a spare.
        let siblings = vec![(pos(1, 0), 3), (pos(1, 1), 4)];
        let cands = adoption_candidates(&siblings, &spares, 4, (pos(0, 0), 4, 8));
        let plan = plan_adoption(&[pos(2, 0), pos(2, 1)], &cands);
        assert_eq!(plan[0].1, pos(1, 0), "under-designed-bound sibling first");
        assert_eq!(plan[1].1, pos(1, 8), "overflow goes to the spare, not past the bound");
    }

    #[test]
    fn empty_spare_pool_degenerates_to_original_plan() {
        let orphans: Vec<NodePos> = (0..8).map(|i| pos(2, i)).collect();
        let siblings: Vec<(NodePos, usize)> =
            [0, 1, 2, 4, 5, 6, 7].iter().map(|&i| (pos(1, i), 8)).collect();
        let cands = adoption_candidates(&siblings, &[], 8, (pos(0, 0), 7, 16));
        // Same tiering and bounds as the hand-built PR 5 candidate list.
        assert!(cands.iter().take(7).all(|c| c.tier == 0 && c.bound == 16));
        assert_eq!((cands[7].tier, cands[7].bound), (1, 16));
        let adopters: Vec<u32> =
            plan_adoption(&orphans, &cands).iter().map(|(_, a)| a.index).collect();
        assert_eq!(adopters, vec![0, 1, 2, 4, 5, 6, 7, 0]);
    }

    #[test]
    fn route_table_registers_spares_idle_and_parentless() {
        let spec = TopologySpec::parse("1x2x4+2").unwrap();
        let rt = RouteTable::new(&spec);
        assert_eq!(rt.idle_spares(), vec![pos(1, 2), pos(1, 3)]);
        assert!(rt.is_alive(pos(1, 2)));
        assert_eq!(rt.current_parent(pos(1, 2)), None);
        assert!(rt.current_children(pos(1, 2)).is_empty());
        // A dead spare drops out of the idle pool.
        assert!(rt.mark_dead(pos(1, 2)));
        assert_eq!(rt.idle_spares(), vec![pos(1, 3)]);
    }

    #[test]
    fn route_table_tracks_liveness_and_children() {
        let spec = TopologySpec::parse("1x2x4").unwrap();
        let rt = RouteTable::new(&spec);
        assert_eq!(rt.epoch(), 0);
        assert_eq!(rt.live_count(), 6, "2 comms + 4 leaves");
        let comm0 = pos(1, 0);
        assert!(rt.is_alive(comm0));
        assert_eq!(rt.current_children(comm0), vec![pos(2, 0), pos(2, 1)]);
        assert_eq!(rt.current_parent(comm0), Some(pos(0, 0)));
        assert!(rt.mark_dead(comm0), "first mark transitions");
        assert!(!rt.mark_dead(comm0), "second mark is a no-op");
        assert_eq!(rt.dead_nodes(), vec![comm0]);
        assert_eq!(rt.live_count(), 5);
    }

    #[test]
    fn stats_snapshot_reflects_increments() {
        let s = OverlayStats::default();
        s.add_stale_packets(3);
        s.add_repairs(1);
        let snap = s.snapshot();
        assert_eq!(snap.stale_packets_dropped, 3);
        assert_eq!(snap.repairs_completed, 1);
        assert_eq!(snap.orphans_adopted, 0);
    }
}
