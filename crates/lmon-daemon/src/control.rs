//! The `lmond` control grammar: line-delimited text over a byte stream.
//!
//! One request per line, space-separated tokens; replies are either a
//! single `OK key=value ...` / `ERR <reason>` line or, for multi-line
//! payloads (`METRICS`), an `OK lines=<n>` header followed by exactly `n`
//! raw lines. Text rather than LMONP on purpose: control traffic is
//! low-rate human/ops traffic (`nc`, `curl`, shell scripts in CI must be
//! able to speak it), while the launch fabric behind the daemon keeps
//! using the binary protocol. The client speaks first: it opens with a
//! `HELLO` line and the daemon answers with its version banner — the
//! daemon writing first would corrupt HTTP scrapes, which expect the
//! status line to be the first bytes on the wire.
//!
//! The protocol is **versioned** (v2): a client may ask for a version
//! (`HELLO 2`) and the daemon answers [`HELLO_BANNER`], which names its
//! newest version and echoes the full supported set (`LMOND 2
//! versions=1,2`). A bare `HELLO` negotiates v1 — v1 clients only ever
//! prefix-matched `LMOND`, so they connect unchanged. Unknown verbs get a
//! typed `unsupported-verb` error naming the connection's negotiated
//! version ([`ParseError::UnsupportedVerb`]).
//!
//! As a convenience for scrape tooling, a request line that looks like an
//! HTTP `GET /metrics` is answered with a minimal HTTP/1.0 response carrying
//! the same exposition text `METRICS` returns (so `curl` and Prometheus can
//! hit the TCP listener directly).

use std::time::Duration;

/// Highest control-protocol version this daemon speaks.
pub const PROTOCOL_VERSION: u32 = 2;

/// Every version the daemon accepts, oldest first.
pub const SUPPORTED_VERSIONS: &[u32] = &[1, 2];

/// Banner the daemon answers a `HELLO` line with: its newest version plus
/// the full supported set. v1 clients only check the `LMOND` prefix, so
/// they keep connecting; v2 clients read the version tokens and pick.
pub const HELLO_BANNER: &str = "LMOND 2 versions=1,2";

/// Pick the version a connection runs at, from the (optional) version the
/// client's `HELLO` carried. A bare `HELLO` is a v1 client; a client
/// asking for a newer version than the daemon speaks is clamped down to
/// [`PROTOCOL_VERSION`] (it learns the daemon's ceiling from the banner).
pub fn negotiate(requested: Option<u32>) -> u32 {
    requested.unwrap_or(1).clamp(1, PROTOCOL_VERSION)
}

/// A parsed control request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Protocol handshake: answered with the raw [`HELLO_BANNER`] line.
    Hello {
        /// Version the client asked for (`HELLO 2`); a bare `HELLO` is a
        /// v1 client.
        version: Option<u32>,
    },
    /// Liveness probe.
    Ping,
    /// Admit (queueing if necessary) and launch a session.
    Launch {
        /// Application executable to launch under tool control.
        app: String,
        /// Nodes to launch across.
        nodes: usize,
        /// Application tasks per node.
        tasks_per_node: usize,
        /// Registered daemon-body name (`sleeper`, `oneshot`, ...).
        body: String,
    },
    /// Attach tool daemons to already-running jobs, one session per pid.
    Attach {
        /// Launcher pids of the running jobs to attach to.
        pids: Vec<u64>,
        /// Registered daemon-body name (`sleeper`, `oneshot`, ...).
        body: String,
    },
    /// Start a plain (tool-free) job on the resource manager, so a later
    /// `ATTACH` has something to attach to.
    RunJob {
        /// Application executable.
        app: String,
        /// Nodes to launch across.
        nodes: usize,
        /// Application tasks per node.
        tasks_per_node: usize,
    },
    /// Rolling upgrade drill: build an overlay with a hot-spare pool and
    /// replace every interior comm daemon one at a time (DESIGN.md §12).
    Upgrade {
        /// Overlay shape (`FANOUTxWIDTHxLEAVES[+SPARES]`); daemon default
        /// when omitted.
        shape: Option<String>,
    },
    /// Daemon-wide status summary.
    Status,
    /// One session's status.
    SessionStatus {
        /// Daemon-wide session id (from the `LAUNCH` reply).
        gsid: u64,
    },
    /// Detach a session: daemons shut down, job keeps running.
    Detach {
        /// Daemon-wide session id.
        gsid: u64,
    },
    /// Kill a session: job and daemons destroyed, allocation released.
    Kill {
        /// Daemon-wide session id.
        gsid: u64,
    },
    /// Prometheus exposition text.
    Metrics,
    /// Stop the daemon (drains the admission queue with errors).
    Shutdown,
    /// HTTP `GET <path>` compatibility request (TCP scrapes).
    HttpGet {
        /// The requested path (`/metrics`).
        path: String,
    },
}

/// Default daemon body used when a `LAUNCH` line omits one.
pub const DEFAULT_BODY: &str = "sleeper";

/// Why a request line failed to parse. The two cases render differently:
/// a malformed known verb carries its usage string, while an unknown verb
/// becomes a typed `unsupported-verb` error naming the connection's
/// negotiated version and the daemon's supported set
/// ([`ParseError::reply`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A known verb with bad arguments; carries the reason/usage text.
    Malformed(String),
    /// A verb the daemon does not speak (at any version); carries the verb.
    UnsupportedVerb(String),
}

impl ParseError {
    /// The `ERR` reply for this parse failure on a connection negotiated
    /// at `version`.
    pub fn reply(&self, version: u32) -> Reply {
        match self {
            ParseError::Malformed(reason) => Reply::Err(reason.clone()),
            ParseError::UnsupportedVerb(verb) => {
                let supported =
                    SUPPORTED_VERSIONS.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
                Reply::Err(format!(
                    "unsupported-verb {verb:?} version={version} supported={supported}"
                ))
            }
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(reason) => f.write_str(reason),
            ParseError::UnsupportedVerb(verb) => write!(f, "unsupported-verb {verb:?}"),
        }
    }
}

fn malformed(reason: impl Into<String>) -> ParseError {
    ParseError::Malformed(reason.into())
}

impl Request {
    /// Parse one request line.
    pub fn parse(line: &str) -> Result<Request, ParseError> {
        let mut toks = line.split_whitespace();
        let Some(cmd) = toks.next() else {
            return Err(malformed("empty request"));
        };
        let rest: Vec<&str> = toks.collect();
        match (cmd.to_ascii_uppercase().as_str(), rest.as_slice()) {
            ("HELLO", []) => Ok(Request::Hello { version: None }),
            ("HELLO", [v, ..]) => {
                Ok(Request::Hello { version: Some(parse_num(v, "protocol version")?) })
            }
            ("PING", []) => Ok(Request::Ping),
            ("LAUNCH", [app, nodes, tpn]) => Ok(Request::Launch {
                app: (*app).to_string(),
                nodes: parse_num(nodes, "nodes")?,
                tasks_per_node: parse_num(tpn, "tasks_per_node")?,
                body: DEFAULT_BODY.to_string(),
            }),
            ("LAUNCH", [app, nodes, tpn, body]) => Ok(Request::Launch {
                app: (*app).to_string(),
                nodes: parse_num(nodes, "nodes")?,
                tasks_per_node: parse_num(tpn, "tasks_per_node")?,
                body: (*body).to_string(),
            }),
            ("LAUNCH", _) => Err(malformed("usage: LAUNCH <app> <nodes> <tasks_per_node> [body]")),
            ("ATTACH", []) => Err(malformed("usage: ATTACH <pid> [<pid>...] [body]")),
            ("ATTACH", toks) => {
                // Every leading numeric token is a pid; one trailing
                // non-numeric token names the daemon body.
                let mut pids = Vec::new();
                let mut body = DEFAULT_BODY.to_string();
                for (i, tok) in toks.iter().enumerate() {
                    match tok.parse::<u64>() {
                        Ok(pid) => pids.push(pid),
                        Err(_) if i == toks.len() - 1 => body = (*tok).to_string(),
                        Err(_) => return Err(malformed(format!("bad pid: {tok:?}"))),
                    }
                }
                if pids.is_empty() {
                    return Err(malformed("usage: ATTACH <pid> [<pid>...] [body]"));
                }
                Ok(Request::Attach { pids, body })
            }
            ("RUNJOB", [app, nodes, tpn]) => Ok(Request::RunJob {
                app: (*app).to_string(),
                nodes: parse_num(nodes, "nodes")?,
                tasks_per_node: parse_num(tpn, "tasks_per_node")?,
            }),
            ("RUNJOB", _) => Err(malformed("usage: RUNJOB <app> <nodes> <tasks_per_node>")),
            ("UPGRADE", []) => Ok(Request::Upgrade { shape: None }),
            ("UPGRADE", [shape]) => Ok(Request::Upgrade { shape: Some((*shape).to_string()) }),
            ("UPGRADE", _) => Err(malformed("usage: UPGRADE [shape]")),
            ("STATUS", []) => Ok(Request::Status),
            ("STATUS", [gsid]) => Ok(Request::SessionStatus { gsid: parse_num(gsid, "gsid")? }),
            ("DETACH", [gsid]) => Ok(Request::Detach { gsid: parse_num(gsid, "gsid")? }),
            ("KILL", [gsid]) => Ok(Request::Kill { gsid: parse_num(gsid, "gsid")? }),
            ("METRICS", []) => Ok(Request::Metrics),
            ("SHUTDOWN", []) => Ok(Request::Shutdown),
            // `GET /metrics HTTP/1.1` — tolerate any trailing HTTP version.
            ("GET", [path, ..]) => Ok(Request::HttpGet { path: (*path).to_string() }),
            (other, _) => Err(ParseError::UnsupportedVerb(other.to_string())),
        }
    }
}

fn parse_num<T: std::str::FromStr>(tok: &str, what: &str) -> Result<T, ParseError> {
    tok.parse().map_err(|_| malformed(format!("bad {what}: {tok:?}")))
}

/// A control reply, ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Single-line success with `key=value` fields.
    Ok(Vec<(String, String)>),
    /// Multi-line success (`OK lines=<n>` + raw payload lines).
    OkLines(Vec<String>),
    /// Single-line failure.
    Err(String),
}

impl Reply {
    /// Success with fields.
    pub fn ok(fields: &[(&str, String)]) -> Reply {
        Reply::Ok(fields.iter().map(|(k, v)| ((*k).to_string(), v.clone())).collect())
    }

    /// Serialize, newline-terminated.
    pub fn render(&self) -> String {
        match self {
            Reply::Ok(fields) => {
                let mut line = String::from("OK");
                for (k, v) in fields {
                    line.push(' ');
                    line.push_str(k);
                    line.push('=');
                    line.push_str(v);
                }
                line.push('\n');
                line
            }
            Reply::OkLines(lines) => {
                let mut out = format!("OK lines={}\n", lines.len());
                for l in lines {
                    out.push_str(l);
                    out.push('\n');
                }
                out
            }
            Reply::Err(reason) => format!("ERR {reason}\n"),
        }
    }
}

/// A reply parsed on the client side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedReply {
    /// `key=value` fields from an `OK` line (empty for multi-line replies).
    pub fields: Vec<(String, String)>,
    /// Payload lines from an `OK lines=<n>` reply.
    pub body: Vec<String>,
}

impl ParsedReply {
    /// Look up an `OK` field.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Look up and parse an `OK` field.
    pub fn field_as<T: std::str::FromStr>(&self, key: &str) -> Option<T> {
        self.field(key)?.parse().ok()
    }
}

/// Parse the header line of a reply: `Ok(Some(n))` means "read `n` payload
/// lines next", `Ok(None)` a complete single-line reply.
pub fn parse_reply_header(line: &str) -> Result<(ParsedReply, Option<usize>), String> {
    if let Some(reason) = line.strip_prefix("ERR") {
        return Err(reason.trim().to_string());
    }
    let Some(rest) = line.strip_prefix("OK") else {
        return Err(format!("malformed reply: {line:?}"));
    };
    let fields: Vec<(String, String)> = rest
        .split_whitespace()
        .filter_map(|tok| tok.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    let reply = ParsedReply { fields, body: Vec::new() };
    if let Some(n) = reply.field_as::<usize>("lines") {
        Ok((reply, Some(n)))
    } else {
        Ok((reply, None))
    }
}

/// How long a client waits for a reply before declaring the daemon hung.
/// Generous: a `LAUNCH` may sit in the admission queue behind a storm.
pub const CLIENT_REPLY_TIMEOUT: Duration = Duration::from_secs(120);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        assert_eq!(Request::parse("HELLO").unwrap(), Request::Hello { version: None });
        assert_eq!(Request::parse("HELLO 2").unwrap(), Request::Hello { version: Some(2) });
        assert_eq!(Request::parse("PING").unwrap(), Request::Ping);
        assert_eq!(
            Request::parse("LAUNCH app 4 2").unwrap(),
            Request::Launch {
                app: "app".into(),
                nodes: 4,
                tasks_per_node: 2,
                body: DEFAULT_BODY.into()
            }
        );
        assert_eq!(
            Request::parse("launch app 4 2 oneshot").unwrap(),
            Request::Launch {
                app: "app".into(),
                nodes: 4,
                tasks_per_node: 2,
                body: "oneshot".into()
            }
        );
        assert_eq!(
            Request::parse("ATTACH 4242").unwrap(),
            Request::Attach { pids: vec![4242], body: DEFAULT_BODY.into() }
        );
        assert_eq!(
            Request::parse("attach 1 2 3 oneshot").unwrap(),
            Request::Attach { pids: vec![1, 2, 3], body: "oneshot".into() }
        );
        assert_eq!(
            Request::parse("RUNJOB app 4 2").unwrap(),
            Request::RunJob { app: "app".into(), nodes: 4, tasks_per_node: 2 }
        );
        assert_eq!(Request::parse("UPGRADE").unwrap(), Request::Upgrade { shape: None });
        assert_eq!(
            Request::parse("UPGRADE 1x4x16+4").unwrap(),
            Request::Upgrade { shape: Some("1x4x16+4".into()) }
        );
        assert_eq!(Request::parse("STATUS").unwrap(), Request::Status);
        assert_eq!(Request::parse("STATUS 17").unwrap(), Request::SessionStatus { gsid: 17 });
        assert_eq!(Request::parse("DETACH 3").unwrap(), Request::Detach { gsid: 3 });
        assert_eq!(Request::parse("KILL 3").unwrap(), Request::Kill { gsid: 3 });
        assert_eq!(Request::parse("METRICS").unwrap(), Request::Metrics);
        assert_eq!(Request::parse("SHUTDOWN").unwrap(), Request::Shutdown);
        assert_eq!(
            Request::parse("GET /metrics HTTP/1.1").unwrap(),
            Request::HttpGet { path: "/metrics".into() }
        );
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        let reason = |line: &str| Request::parse(line).unwrap_err().to_string();
        assert!(reason("").contains("empty"));
        assert!(reason("LAUNCH app").contains("usage"));
        assert!(reason("LAUNCH app x 2").contains("bad nodes"));
        assert!(reason("DETACH abc").contains("bad gsid"));
        assert!(reason("ATTACH").contains("usage"));
        assert!(reason("ATTACH body 17").contains("bad pid"));
        assert!(reason("ATTACH oneshot").contains("usage"));
        assert!(reason("RUNJOB app 4").contains("usage"));
        assert!(reason("UPGRADE a b").contains("usage"));
        assert!(reason("HELLO two").contains("bad protocol version"));
        // Malformed known verbs are not "unsupported": the typed variant
        // is reserved for verbs the daemon does not speak at all.
        assert!(matches!(Request::parse("LAUNCH app").unwrap_err(), ParseError::Malformed(_)));
    }

    #[test]
    fn unknown_verbs_are_typed_and_name_the_negotiated_version() {
        let err = Request::parse("FROB 1").unwrap_err();
        assert_eq!(err, ParseError::UnsupportedVerb("FROB".into()));
        let rendered = err.reply(2).render();
        assert_eq!(rendered, "ERR unsupported-verb \"FROB\" version=2 supported=1,2\n");
        // The same failure on a v1 connection names v1.
        assert!(err.reply(1).render().contains("version=1"));
    }

    #[test]
    fn negotiation_clamps_to_the_supported_set() {
        assert_eq!(negotiate(None), 1, "a bare HELLO is a v1 client");
        assert_eq!(negotiate(Some(1)), 1);
        assert_eq!(negotiate(Some(2)), 2);
        assert_eq!(negotiate(Some(99)), PROTOCOL_VERSION, "future clients clamp down");
        assert_eq!(negotiate(Some(0)), 1);
        assert!(HELLO_BANNER.starts_with("LMOND"), "v1 clients prefix-match the banner");
        for v in SUPPORTED_VERSIONS {
            assert!(HELLO_BANNER.contains(&v.to_string()), "banner echoes the supported set");
        }
    }

    #[test]
    fn reply_roundtrip() {
        let r = Reply::ok(&[("gsid", "7".to_string()), ("daemons", "4".to_string())]);
        let rendered = r.render();
        assert_eq!(rendered, "OK gsid=7 daemons=4\n");
        let (parsed, more) = parse_reply_header(rendered.trim_end()).unwrap();
        assert_eq!(more, None);
        assert_eq!(parsed.field_as::<u64>("gsid"), Some(7));
        assert_eq!(parsed.field("daemons"), Some("4"));

        let multi = Reply::OkLines(vec!["a 1".into(), "b 2".into()]).render();
        let mut lines = multi.lines();
        let (_, more) = parse_reply_header(lines.next().unwrap()).unwrap();
        assert_eq!(more, Some(2));
        assert_eq!(lines.collect::<Vec<_>>(), vec!["a 1", "b 2"]);

        let err = Reply::Err("busy".into()).render();
        assert_eq!(parse_reply_header(err.trim_end()).unwrap_err(), "busy");
    }
}
