//! The long-lived launch service: front-end pool, session registry, and
//! the control-connection serve loop.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use lmon_cluster::config::ClusterConfig;
use lmon_cluster::process::Pid;
use lmon_cluster::VirtualCluster;
use lmon_core::be::BeMain;
use lmon_core::fe::LmonFrontEnd;
use lmon_core::session::SessionId;
use lmon_core::HealthState;
use lmon_proto::payload::DaemonSpec;
use lmon_rm::api::{JobSpec, ResourceManager};
use lmon_rm::SlurmRm;
use lmon_tbon::filter::{FilterKind, FilterRegistry};
use lmon_tbon::overlay::{run_comm_node, FrontEndpoint, LeafEvent, Overlay, UpgradeReport};
use lmon_tbon::recovery::OverlayStats;
use lmon_tbon::spec::TopologySpec;
use lmon_tbon::{PhiAccrualParams, SuspicionTable};

use crate::admission::{AdmissionError, AdmissionQueue, Permit};
use crate::control::{negotiate, Reply, Request, HELLO_BANNER, SUPPORTED_VERSIONS};
use crate::error::{DaemonError, DaemonResult};
use crate::metrics::{render_prometheus, MetricsSnapshot};

/// Overlay shape an `UPGRADE` request drills when none is given: a designed
/// fan-out of 4 over 16 leaves, with one hot spare per interior comm.
pub const DEFAULT_UPGRADE_SHAPE: &str = "1x4x16+4";

/// Suspicion tables retained for `/metrics` (most recent drills only, so a
/// long-lived daemon's scrape payload stays bounded).
const SUSPICION_TABLES_CAP: usize = 4;

/// Tunables for a daemon instance. `Default` is sized for tests and small
/// deployments; production embedders scale the pool and cluster.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Pooled front ends (each with its own engine and virtual cluster).
    pub backends: usize,
    /// Federation groups ([`FeShard`]s) the backend pool is partitioned
    /// into. Sessions are pinned to a group by a deterministic hash of the
    /// application name; clamped to `[1, backends]`.
    pub groups: usize,
    /// Nodes per backend's virtual cluster.
    pub cluster_nodes: usize,
    /// Concurrent in-flight session bound (the admission limit).
    pub admission_limit: usize,
    /// Launch requests that may wait in the admission queue before new
    /// ones are rejected with a retryable busy error.
    pub queue_capacity: usize,
    /// Per-session health-history ring bound (see `lmon_core::health`).
    pub health_history_cap: usize,
    /// Concurrent control connections before new ones are turned away.
    pub max_connections: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            backends: 2,
            groups: 1,
            cluster_nodes: 64,
            admission_limit: 8,
            queue_capacity: 1024,
            health_history_cap: lmon_core::DEFAULT_HISTORY_CAP,
            max_connections: 256,
        }
    }
}

/// One pooled front end and the virtual cluster behind it.
struct Backend {
    fe: Arc<LmonFrontEnd>,
    #[allow(dead_code)] // kept alive for the backend's lifetime + debugging
    cluster: VirtualCluster,
}

/// A live session's bookkeeping entry. Holds the admission [`Permit`]: the
/// slot frees exactly when the entry is dropped (detach/kill/error), so no
/// control path can leak admission capacity. Launch sessions keep their
/// launch parameters (`nodes`/`tasks_per_node`/`body`) so a whole-group FE
/// failover can re-home them onto a sibling shard; attach sessions carry
/// `body: None` — their launcher lives on the dead shard's cluster, so
/// they are dropped (and counted) instead of re-homed.
struct SessionEntry {
    fe_idx: usize,
    group: usize,
    sid: SessionId,
    app: String,
    daemons: usize,
    nodes: usize,
    tasks_per_node: usize,
    body: Option<String>,
    started: Instant,
    #[allow(dead_code)] // held for its Drop
    permit: Permit,
}

/// One federation group's slice of the backend pool: the [`FeShard`] a
/// session is pinned to. Shard `g` owns backends `{ i | i % groups == g }`,
/// so every group has at least one FE whenever `groups <= backends`.
#[derive(Debug, Clone)]
pub struct FeShard {
    /// Group index (`0..groups`).
    pub group: usize,
    /// Backend indices this shard owns.
    pub backends: Vec<usize>,
    /// False after [`Daemon::fail_group`] took the group's FEs down.
    pub alive: bool,
}

/// Outcome of a whole-group FE failover ([`Daemon::fail_group`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailoverReport {
    /// The group whose front ends were declared dead.
    pub group: usize,
    /// Inter-group federation epoch after the bump.
    pub epoch: u64,
    /// Launch sessions re-homed onto sibling shards.
    pub rehomed: usize,
    /// Sessions dropped (attach sessions, or re-launch failures).
    pub dropped: usize,
}

/// FNV-1a over the app name: the deterministic session→group pin. Stable
/// across runs and platforms, so chaos seeds reproduce placement exactly.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The persistent multi-tenant launch service.
///
/// Owns a pool of [`LmonFrontEnd`]s and serves launch/attach-style session
/// management over the line-delimited control protocol in
/// [`crate::control`]. See DESIGN.md §10 for the architecture.
pub struct Daemon {
    cfg: DaemonConfig,
    backends: Vec<Backend>,
    /// Effective federation group count (`cfg.groups` clamped to the pool).
    groups: usize,
    /// Per-group liveness; flipped by [`Daemon::fail_group`].
    shard_alive: Vec<AtomicBool>,
    /// Inter-group federation epoch: bumps on every group failover, so
    /// overlay re-attaches and route publishes from before the failover
    /// are recognizably stale (the PR 5 rule, across group boundaries).
    fed_epoch: AtomicU64,
    fed_failovers: AtomicU64,
    next_backend: AtomicUsize,
    sessions: Mutex<HashMap<u64, SessionEntry>>,
    next_gsid: AtomicU64,
    admission: Arc<AdmissionQueue>,
    bodies: Mutex<HashMap<String, BeMain>>,
    overlay_stats: Arc<OverlayStats>,
    launches_total: AtomicU64,
    launch_failures_total: AtomicU64,
    active_conns: AtomicUsize,
    shutting_down: AtomicBool,
    started_at: Instant,
    upgrades_run: AtomicU64,
    /// Live suspicion tables from recent upgrade drills (bounded; exported
    /// as the per-child suspicion gauge on `/metrics`).
    suspicion_tables: Mutex<Vec<Arc<SuspicionTable>>>,
    /// Bound control endpoints, recorded by [`start_daemon`] so that
    /// [`Daemon::begin_shutdown`] can poke its own blocking accept loops
    /// awake (a `SHUTDOWN` arriving on one listener must unblock both).
    endpoints: Mutex<BoundEndpoints>,
}

#[derive(Default)]
struct BoundEndpoints {
    socket_path: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
}

impl Daemon {
    /// Build the service (front-end pool up, nothing listening yet).
    pub fn new(cfg: DaemonConfig) -> DaemonResult<Arc<Daemon>> {
        let pool = cfg.backends.max(1);
        let groups = cfg.groups.clamp(1, pool);
        let mut backends = Vec::with_capacity(pool);
        for idx in 0..pool {
            let cluster = VirtualCluster::new(ClusterConfig::with_nodes(cfg.cluster_nodes));
            let rm: Arc<dyn ResourceManager> = Arc::new(SlurmRm::new(cluster.clone()));
            let fe = Arc::new(LmonFrontEnd::init(rm).map_err(DaemonError::Core)?);
            fe.set_health_history_capacity(cfg.health_history_cap);
            fe.set_shard_label(format!("g{}", idx % groups));
            backends.push(Backend { fe, cluster });
        }
        let admission = AdmissionQueue::new(cfg.admission_limit, cfg.queue_capacity);
        let daemon = Arc::new(Daemon {
            backends,
            groups,
            shard_alive: (0..groups).map(|_| AtomicBool::new(true)).collect(),
            fed_epoch: AtomicU64::new(0),
            fed_failovers: AtomicU64::new(0),
            next_backend: AtomicUsize::new(0),
            sessions: Mutex::new(HashMap::new()),
            next_gsid: AtomicU64::new(1),
            admission,
            bodies: Mutex::new(HashMap::new()),
            overlay_stats: Arc::new(OverlayStats::default()),
            launches_total: AtomicU64::new(0),
            launch_failures_total: AtomicU64::new(0),
            active_conns: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            started_at: Instant::now(),
            upgrades_run: AtomicU64::new(0),
            suspicion_tables: Mutex::new(Vec::new()),
            endpoints: Mutex::new(BoundEndpoints::default()),
            cfg,
        });
        daemon.register_builtin_bodies();
        Ok(daemon)
    }

    /// `sleeper` parks until detach/kill; `oneshot` exits after the
    /// bootstrap barrier (storm workloads that only measure launch).
    fn register_builtin_bodies(&self) {
        let sleeper: BeMain = Arc::new(|be| {
            let _ = be.barrier();
            let _ = be.wait_shutdown();
        });
        let oneshot: BeMain = Arc::new(|be| {
            let _ = be.barrier();
        });
        let mut bodies = self.bodies.lock();
        bodies.insert("sleeper".into(), sleeper);
        bodies.insert("oneshot".into(), oneshot);
    }

    /// Register (or replace) a daemon body under `name`, e.g. a real tool
    /// back end like jobsnap's. Embedders call this before serving.
    pub fn register_body(&self, name: impl Into<String>, body: BeMain) {
        self.bodies.lock().insert(name.into(), body);
    }

    /// Shared overlay-recovery counters: TBON workloads run next to this
    /// daemon feed them, `/metrics` exports them.
    pub fn overlay_stats(&self) -> Arc<OverlayStats> {
        Arc::clone(&self.overlay_stats)
    }

    /// The admission queue (stats inspection, embedder-driven admission).
    pub fn admission(&self) -> &Arc<AdmissionQueue> {
        &self.admission
    }

    /// Register a suspicion table for `/metrics` export. Only the 4 most
    /// recent tables are retained (`SUSPICION_TABLES_CAP`) — stale drills
    /// age out instead of growing the scrape payload forever.
    pub fn register_suspicion_table(&self, table: Arc<SuspicionTable>) {
        let mut tables = self.suspicion_tables.lock();
        tables.push(table);
        if tables.len() > SUSPICION_TABLES_CAP {
            let excess = tables.len() - SUSPICION_TABLES_CAP;
            tables.drain(..excess);
        }
    }

    /// Chaos/test hook: the front end behind backend `idx` (the round-robin
    /// target of `LAUNCH` requests), so a test can install fault plans or
    /// shorten handshake timeouts before driving a storm. `None` when `idx`
    /// is past the configured backend count.
    pub fn backend_fe(&self, idx: usize) -> Option<&Arc<LmonFrontEnd>> {
        self.backends.get(idx).map(|b| &b.fe)
    }

    // --- FeShard pool -----------------------------------------------------

    /// Effective federation group count (≥ 1).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Current inter-group federation epoch (bumps on every failover).
    pub fn fed_epoch(&self) -> u64 {
        self.fed_epoch.load(Ordering::SeqCst)
    }

    /// The [`FeShard`] view of group `g` (its backend slice + liveness).
    pub fn shard(&self, group: usize) -> Option<FeShard> {
        if group >= self.groups {
            return None;
        }
        Some(FeShard {
            group,
            backends: (0..self.backends.len()).filter(|i| i % self.groups == group).collect(),
            alive: self.shard_alive[group].load(Ordering::SeqCst),
        })
    }

    /// The group `app`'s sessions are pinned to: FNV-1a of the name modulo
    /// the group count, linearly probed past dead shards so a failed group
    /// deterministically hands its keyspace to the next live sibling.
    pub fn group_of_app(&self, app: &str) -> usize {
        let home = (fnv1a(app) % self.groups as u64) as usize;
        (0..self.groups)
            .map(|off| (home + off) % self.groups)
            .find(|&g| self.shard_alive[g].load(Ordering::SeqCst))
            .unwrap_or(home)
    }

    /// Round-robin over a group's backends.
    fn pick_backend(&self, group: usize) -> usize {
        let shard: Vec<usize> =
            (0..self.backends.len()).filter(|i| i % self.groups == group).collect();
        let n = self.next_backend.fetch_add(1, Ordering::Relaxed);
        shard[n % shard.len()]
    }

    /// Declare a whole group's front ends dead and fail its sessions over:
    /// the federation epoch bumps *first* (so any in-flight publish from
    /// the dead group is droppably stale), then every launch session
    /// pinned to the group is re-launched on a sibling shard's FE under
    /// the same gsid and admission permit. Attach sessions cannot follow —
    /// their launcher ran on the dead shard's cluster — so they are
    /// dropped and counted. DESIGN.md §13 gives the ordering argument.
    pub fn fail_group(&self, group: usize) -> FailoverReport {
        let epoch = self.fed_epoch.fetch_add(1, Ordering::SeqCst) + 1;
        self.fed_failovers.fetch_add(1, Ordering::SeqCst);
        if group < self.groups {
            self.shard_alive[group].store(false, Ordering::SeqCst);
        }
        let mut report = FailoverReport { group, epoch, rehomed: 0, dropped: 0 };

        let victims: Vec<u64> = {
            let sessions = self.sessions.lock();
            sessions.iter().filter(|(_, e)| e.group == group).map(|(g, _)| *g).collect()
        };
        for gsid in victims {
            let Some(entry) = self.sessions.lock().remove(&gsid) else { continue };
            let Some(body_name) = entry.body.clone() else {
                report.dropped += 1; // attach session: launcher died with the shard
                continue;
            };
            let sibling = self.group_of_app(&entry.app);
            if sibling == group || !self.shard_alive[sibling].load(Ordering::SeqCst) {
                report.dropped += 1; // no live sibling left to re-home onto
                continue;
            }
            let body_fn = self.bodies.lock().get(&body_name).cloned();
            let Some(body_fn) = body_fn else {
                report.dropped += 1;
                continue;
            };
            let fe_idx = self.pick_backend(sibling);
            let fe = &self.backends[fe_idx].fe;
            let sid = fe.create_session();
            match fe.launch_and_spawn(
                sid,
                &entry.app,
                &[],
                entry.nodes,
                entry.tasks_per_node,
                DaemonSpec::bare(format!("lmond_be_{body_name}")),
                body_fn,
            ) {
                Ok(outcome) => {
                    fe.record_session_health(
                        sid,
                        HealthState::Healed,
                        0,
                        format!("re-homed from dead group g{group} (gsid {gsid}, epoch {epoch})"),
                    );
                    self.sessions.lock().insert(
                        gsid,
                        SessionEntry {
                            fe_idx,
                            group: sibling,
                            sid,
                            daemons: outcome.daemon_count,
                            started: Instant::now(),
                            ..entry
                        },
                    );
                    report.rehomed += 1;
                }
                Err(_) => {
                    self.launch_failures_total.fetch_add(1, Ordering::Relaxed);
                    report.dropped += 1; // entry (and permit) already removed
                }
            }
        }
        report
    }

    /// Live session count.
    pub fn sessions_active(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Begin shutdown: stop admitting, wake queued waiters with errors, and
    /// poke any blocking accept loops awake with throwaway self-connects so
    /// they observe the flag and exit.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.admission.close();
        let ep = self.endpoints.lock();
        #[cfg(unix)]
        if let Some(path) = &ep.socket_path {
            let _ = UnixStream::connect(path);
        }
        if let Some(addr) = ep.tcp_addr {
            let _ = TcpStream::connect(addr);
        }
    }

    // --- request dispatch -------------------------------------------------

    /// Serve one parsed request (transport-independent; also the in-process
    /// API used by tests that bypass sockets).
    pub fn dispatch(&self, req: &Request) -> Reply {
        match req {
            Request::Hello { version } => {
                let supported =
                    SUPPORTED_VERSIONS.iter().map(u32::to_string).collect::<Vec<_>>().join(",");
                Reply::ok(&[
                    ("banner", HELLO_BANNER.replace(' ', "/")),
                    ("version", negotiate(*version).to_string()),
                    ("supported", supported),
                ])
            }
            Request::Ping => Reply::ok(&[
                ("pong", "1".into()),
                ("uptime_s", self.started_at.elapsed().as_secs().to_string()),
            ]),
            Request::Launch { app, nodes, tasks_per_node, body } => {
                self.handle_launch(app, *nodes, *tasks_per_node, body)
            }
            Request::Attach { pids, body } => self.handle_attach(pids, body),
            Request::RunJob { app, nodes, tasks_per_node } => {
                self.handle_runjob(app, *nodes, *tasks_per_node)
            }
            Request::Upgrade { shape } => self.handle_upgrade(shape.as_deref()),
            Request::Status => self.handle_status(),
            Request::SessionStatus { gsid } => self.handle_session_status(*gsid),
            Request::Detach { gsid } => self.handle_end(*gsid, false),
            Request::Kill { gsid } => self.handle_end(*gsid, true),
            Request::Metrics => {
                Reply::OkLines(self.render_metrics().lines().map(str::to_string).collect())
            }
            Request::Shutdown => Reply::ok(&[("shutdown", "1".into())]),
            Request::HttpGet { path } => {
                // Normally intercepted by the connection loop; answering
                // inline keeps dispatch total.
                Reply::Err(format!("HTTP GET {path} is only served on socket connections"))
            }
        }
    }

    fn handle_launch(&self, app: &str, nodes: usize, tasks_per_node: usize, body: &str) -> Reply {
        let Some(body_fn) = self.bodies.lock().get(body).cloned() else {
            return Reply::Err(format!("unknown daemon body {body:?}"));
        };
        if nodes == 0 || tasks_per_node == 0 {
            return Reply::Err("nodes and tasks_per_node must be >= 1".into());
        }
        if nodes > self.cfg.cluster_nodes {
            return Reply::Err(format!(
                "nodes {nodes} exceeds backend cluster size {}",
                self.cfg.cluster_nodes
            ));
        }

        // Admission: block (queueing) or fail fast when the queue is full.
        let queued_at = Instant::now();
        let permit = match self.admission.admit() {
            Ok(p) => p,
            Err(e @ AdmissionError::QueueFull { .. }) => return Reply::Err(format!("busy: {e}")),
            Err(e @ AdmissionError::Closed) => return Reply::Err(format!("shutdown: {e}")),
        };
        let wait_ms = queued_at.elapsed().as_millis();

        let group = self.group_of_app(app);
        let fe_idx = self.pick_backend(group);
        let fe = &self.backends[fe_idx].fe;
        let sid = fe.create_session();
        let launch_started = Instant::now();
        match fe.launch_and_spawn(
            sid,
            app,
            &[],
            nodes,
            tasks_per_node,
            DaemonSpec::bare(format!("lmond_be_{body}")),
            body_fn,
        ) {
            Ok(outcome) => {
                let gsid = self.next_gsid.fetch_add(1, Ordering::Relaxed);
                // Seed the health ledger so every daemon-launched session
                // shows up in `/metrics` (and retires into the bounded ring
                // on kill/detach rather than vanishing).
                fe.record_session_health(
                    sid,
                    HealthState::Healthy,
                    0,
                    format!("launched via lmond (gsid {gsid})"),
                );
                self.sessions.lock().insert(
                    gsid,
                    SessionEntry {
                        fe_idx,
                        group,
                        sid,
                        app: app.to_string(),
                        daemons: outcome.daemon_count,
                        nodes,
                        tasks_per_node,
                        body: Some(body.to_string()),
                        started: launch_started,
                        permit,
                    },
                );
                self.launches_total.fetch_add(1, Ordering::Relaxed);
                Reply::ok(&[
                    ("gsid", gsid.to_string()),
                    ("fe", fe_idx.to_string()),
                    ("group", group.to_string()),
                    ("daemons", outcome.daemon_count.to_string()),
                    ("wait_ms", wait_ms.to_string()),
                    ("launch_ms", launch_started.elapsed().as_millis().to_string()),
                ])
            }
            Err(e) => {
                // `permit` drops here: a failed launch frees its slot.
                self.launch_failures_total.fetch_add(1, Ordering::Relaxed);
                Reply::Err(format!("launch failed: {e}"))
            }
        }
    }

    /// Start a plain (tool-free) job on one backend's resource manager —
    /// the running launcher a later `ATTACH` targets. Mirrors the paper's
    /// attach-mode workflow: the job exists first, the tool comes second.
    fn handle_runjob(&self, app: &str, nodes: usize, tasks_per_node: usize) -> Reply {
        if nodes == 0 || tasks_per_node == 0 {
            return Reply::Err("nodes and tasks_per_node must be >= 1".into());
        }
        if nodes > self.cfg.cluster_nodes {
            return Reply::Err(format!(
                "nodes {nodes} exceeds backend cluster size {}",
                self.cfg.cluster_nodes
            ));
        }
        let fe_idx = self.pick_backend(self.group_of_app(app));
        let rm = self.backends[fe_idx].fe.rm();
        match rm.launch_job(&JobSpec::new(app, nodes, tasks_per_node), false) {
            Ok(handle) => Reply::ok(&[
                ("pid", handle.launcher_pid.0.to_string()),
                ("job", handle.job_id.to_string()),
                ("fe", fe_idx.to_string()),
                ("nodes", handle.allocation.len().to_string()),
            ]),
            Err(e) => Reply::Err(format!("runjob failed: {e}")),
        }
    }

    /// Attach tool daemons to already-running jobs: one session per
    /// launcher pid, each admitted like a launch. Every pid is resolved to
    /// its owning backend *before* any attach runs, so a bad pid fails the
    /// whole request instead of half of it; a failure mid-way reports how
    /// many sessions were already established (they stay live and show up
    /// in `STATUS`).
    fn handle_attach(&self, pids: &[u64], body: &str) -> Reply {
        let Some(body_fn) = self.bodies.lock().get(body).cloned() else {
            return Reply::Err(format!("unknown daemon body {body:?}"));
        };
        let mut targets = Vec::with_capacity(pids.len());
        for &pid in pids {
            let Some(fe_idx) = (0..self.backends.len())
                .find(|&i| self.backends[i].cluster.find_proc(Pid(pid)).is_ok())
            else {
                return Reply::Err(format!("no running process with pid {pid}"));
            };
            targets.push((pid, fe_idx));
        }

        let mut gsids: Vec<String> = Vec::with_capacity(targets.len());
        let mut daemons_total = 0usize;
        for (pid, fe_idx) in targets {
            let permit = match self.admission.admit() {
                Ok(p) => p,
                Err(e @ AdmissionError::QueueFull { .. }) => {
                    return Reply::Err(format!(
                        "busy: {e} ({} of {} attached)",
                        gsids.len(),
                        pids.len()
                    ))
                }
                Err(e @ AdmissionError::Closed) => return Reply::Err(format!("shutdown: {e}")),
            };
            let fe = &self.backends[fe_idx].fe;
            let sid = fe.create_session();
            let started = Instant::now();
            match fe.attach_and_spawn(
                sid,
                Pid(pid),
                DaemonSpec::bare(format!("lmond_be_{body}")),
                body_fn.clone(),
            ) {
                Ok(outcome) => {
                    let gsid = self.next_gsid.fetch_add(1, Ordering::Relaxed);
                    fe.record_session_health(
                        sid,
                        HealthState::Healthy,
                        0,
                        format!("attached via lmond (gsid {gsid}, launcher pid {pid})"),
                    );
                    self.sessions.lock().insert(
                        gsid,
                        SessionEntry {
                            fe_idx,
                            group: fe_idx % self.groups,
                            sid,
                            app: format!("attach:pid={pid}"),
                            daemons: outcome.daemon_count,
                            nodes: 0,
                            tasks_per_node: 0,
                            body: None,
                            started,
                            permit,
                        },
                    );
                    self.launches_total.fetch_add(1, Ordering::Relaxed);
                    daemons_total += outcome.daemon_count;
                    gsids.push(gsid.to_string());
                }
                Err(e) => {
                    self.launch_failures_total.fetch_add(1, Ordering::Relaxed);
                    return Reply::Err(format!(
                        "attach pid {pid} failed: {e} ({} of {} attached)",
                        gsids.len(),
                        pids.len()
                    ));
                }
            }
        }
        Reply::ok(&[
            ("gsids", gsids.join(",")),
            ("sessions", gsids.len().to_string()),
            ("daemons", daemons_total.to_string()),
        ])
    }

    /// Rolling-upgrade drill (DESIGN.md §12): bring up an overlay with a
    /// hot-spare pool next to the session fabric, replace every interior
    /// comm daemon one drain at a time, and verify end-to-end waves before
    /// and after. The overlay shares the daemon's stats ledger, so every
    /// drain/spare/suspicion counter lands on `/metrics`, and the drill's
    /// suspicion table stays registered for the per-child gauge.
    fn handle_upgrade(&self, shape: Option<&str>) -> Reply {
        let shape = shape.unwrap_or(DEFAULT_UPGRADE_SHAPE);
        let spec = match TopologySpec::parse(shape) {
            Ok(s) => s,
            Err(e) => return Reply::Err(format!("bad shape {shape:?}: {e}")),
        };
        // The drill holds an admission slot like any session: a storm of
        // UPGRADE requests queues instead of stacking overlay threads.
        let permit = match self.admission.admit() {
            Ok(p) => p,
            Err(e @ AdmissionError::QueueFull { .. }) => return Reply::Err(format!("busy: {e}")),
            Err(e @ AdmissionError::Closed) => return Reply::Err(format!("shutdown: {e}")),
        };

        let leaves = spec.leaf_count();
        let overlay = Overlay::build_shared(&spec, FilterRegistry::new(), self.overlay_stats());
        let mut handles = Vec::new();
        for harness in overlay.comm {
            handles.push(std::thread::spawn(move || run_comm_node(harness, FilterRegistry::new())));
        }
        for leaf in overlay.leaves {
            handles.push(std::thread::spawn(move || {
                let _ = leaf.send_hello();
                loop {
                    match leaf.recv() {
                        Ok(LeafEvent::Data(pkt)) => {
                            let _ = leaf.send_up(pkt.stream, pkt.tag, vec![leaf.leaf_index as u8]);
                        }
                        Ok(LeafEvent::StreamOpened(_)) => continue,
                        Ok(LeafEvent::Shutdown) | Err(_) => return,
                    }
                }
            }));
        }

        let mut front = overlay.front;
        let result = run_upgrade_drill(&mut front, leaves);
        front.shutdown();
        for h in handles {
            let _ = h.join();
        }
        drop(permit);

        match result {
            Ok((table, report)) => {
                self.register_suspicion_table(table);
                self.upgrades_run.fetch_add(1, Ordering::Relaxed);
                let mut drains_us: Vec<u128> =
                    report.steps.iter().map(|s| s.drain.as_micros()).collect();
                drains_us.sort_unstable();
                let pct = |q: f64| -> u128 {
                    if drains_us.is_empty() {
                        0
                    } else {
                        drains_us[((drains_us.len() - 1) as f64 * q).round() as usize]
                    }
                };
                let spares_used = report.steps.iter().filter(|s| s.spare_used.is_some()).count();
                Reply::ok(&[
                    ("shape", shape.to_string()),
                    ("nodes_upgraded", report.steps.len().to_string()),
                    ("spares_used", spares_used.to_string()),
                    ("unplanned_repairs", report.unplanned_repairs.to_string()),
                    ("epoch", report.epoch.to_string()),
                    ("drain_p50_us", pct(0.50).to_string()),
                    ("drain_p99_us", pct(0.99).to_string()),
                    ("waves_intact", "1".into()),
                ])
            }
            Err(e) => Reply::Err(format!("upgrade drill failed: {e}")),
        }
    }

    fn handle_status(&self) -> Reply {
        let adm = self.admission.stats();
        Reply::ok(&[
            ("uptime_s", self.started_at.elapsed().as_secs().to_string()),
            ("backends", self.backends.len().to_string()),
            ("groups", self.groups.to_string()),
            ("fed_epoch", self.fed_epoch().to_string()),
            ("fed_failovers", self.fed_failovers.load(Ordering::SeqCst).to_string()),
            ("sessions", self.sessions_active().to_string()),
            ("in_flight", adm.in_flight.to_string()),
            ("queue_depth", adm.waiting.to_string()),
            ("peak_in_flight", adm.peak_in_flight.to_string()),
            ("admitted", adm.admitted_total.to_string()),
            ("rejected", adm.rejected_total.to_string()),
            ("launches", self.launches_total.load(Ordering::Relaxed).to_string()),
            ("failures", self.launch_failures_total.load(Ordering::Relaxed).to_string()),
            ("upgrades", self.upgrades_run.load(Ordering::Relaxed).to_string()),
            ("limit", self.admission.limit().to_string()),
            ("queue_capacity", self.cfg.queue_capacity.to_string()),
        ])
    }

    fn handle_session_status(&self, gsid: u64) -> Reply {
        let sessions = self.sessions.lock();
        let Some(entry) = sessions.get(&gsid) else {
            return Reply::Err(format!("no such session {gsid}"));
        };
        let fe = &self.backends[entry.fe_idx].fe;
        let state = match fe.session_state(entry.sid) {
            Ok(s) => format!("{s:?}"),
            Err(e) => format!("unknown({e})"),
        };
        let health = format!("{:?}", fe.session_health(entry.sid));
        Reply::ok(&[
            ("gsid", gsid.to_string()),
            ("fe", entry.fe_idx.to_string()),
            ("group", entry.group.to_string()),
            ("app", entry.app.clone()),
            ("daemons", entry.daemons.to_string()),
            ("state", state),
            ("health", health),
            ("age_s", entry.started.elapsed().as_secs().to_string()),
        ])
    }

    /// Detach (job keeps running) or kill (job destroyed, nodes released).
    /// Either way the entry — and with it the admission permit — is freed
    /// only after the front end finished tearing the session down.
    fn handle_end(&self, gsid: u64, kill: bool) -> Reply {
        let Some(entry) = self.sessions.lock().remove(&gsid) else {
            return Reply::Err(format!("no such session {gsid}"));
        };
        let fe = &self.backends[entry.fe_idx].fe;
        let res = if kill { fe.kill(entry.sid) } else { fe.detach(entry.sid) };
        match res {
            Ok(()) => Reply::ok(&[
                ("gsid", gsid.to_string()),
                (if kill { "killed" } else { "detached" }, "1".into()),
            ]),
            Err(e) => Reply::Err(format!("{}: {e}", if kill { "kill" } else { "detach" })),
        }
    }

    // --- metrics ----------------------------------------------------------

    /// Gather a [`MetricsSnapshot`] across the pool.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let transports = self.backends.iter().map(|b| b.fe.transport_stats()).collect();
        let healths: Vec<_> = self.backends.iter().map(|b| b.fe.health_summary()).collect();
        let degraded: usize = healths.iter().map(|h| h.degraded_sessions).sum();
        let healed: usize = healths.iter().map(|h| h.healed_sessions).sum();
        let draining: usize = healths.iter().map(|h| h.draining_sessions).sum();
        let upgraded: usize = healths.iter().map(|h| h.upgraded_sessions).sum();
        let active = self.sessions_active();
        let suspicion_levels = self
            .suspicion_tables
            .lock()
            .iter()
            .enumerate()
            .flat_map(|(overlay, table)| {
                table.snapshot().into_iter().map(move |(pos, entry)| {
                    (overlay, format!("{}:{}", pos.level, pos.index), entry.level as u8)
                })
            })
            .collect();
        MetricsSnapshot {
            uptime: self.started_at.elapsed(),
            fed_groups: self.groups,
            fed_epoch: self.fed_epoch(),
            fed_failovers: self.fed_failovers.load(Ordering::SeqCst),
            sessions_active: active,
            launches_total: self.launches_total.load(Ordering::Relaxed),
            launch_failures_total: self.launch_failures_total.load(Ordering::Relaxed),
            admission: self.admission.stats(),
            transports,
            healths,
            overlay: self.overlay_stats.snapshot(),
            health_states: vec![
                // Approximation: a session is healthy unless its (live or
                // recently retired) monitor says otherwise.
                (
                    HealthState::Healthy,
                    active.saturating_sub(degraded + healed + draining + upgraded),
                ),
                (HealthState::Degraded, degraded),
                (HealthState::Healed, healed),
                (HealthState::Draining, draining),
                (HealthState::Upgraded, upgraded),
            ],
            suspicion_levels,
        }
    }

    /// The `/metrics` payload.
    pub fn render_metrics(&self) -> String {
        render_prometheus(&self.metrics_snapshot())
    }

    // --- serving ----------------------------------------------------------

    /// Serve one control connection until EOF or `SHUTDOWN`. The client
    /// speaks first (a `HELLO` line, or directly a command): writing the
    /// banner unprompted would corrupt HTTP `GET /metrics` scrapes, whose
    /// clients expect the status line to open the byte stream.
    fn serve_conn<S: std::io::Read + Write>(self: &Arc<Self>, stream: S, writer: &mut S) {
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        // Until a HELLO negotiates otherwise, a connection is a v1 client
        // (v1 clients may skip the handshake and go straight to verbs).
        let mut negotiated: u32 = 1;
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) | Err(_) => return, // client went away
                Ok(_) => {}
            }
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                continue;
            }
            match Request::parse(trimmed) {
                Ok(Request::Hello { version }) => {
                    negotiated = negotiate(version);
                    // The banner always advertises the full supported set;
                    // the client takes the min (see `control` docs).
                    if writeln!(writer, "{HELLO_BANNER}").is_err() || writer.flush().is_err() {
                        return;
                    }
                }
                Ok(Request::HttpGet { path }) => {
                    // One-shot HTTP compatibility: answer and close.
                    let _ = write_http_response(writer, self, &path);
                    return;
                }
                Ok(req) => {
                    let reply = self.dispatch(&req);
                    if writer.write_all(reply.render().as_bytes()).is_err()
                        || writer.flush().is_err()
                    {
                        return;
                    }
                    if matches!(req, Request::Shutdown) {
                        self.begin_shutdown();
                        return;
                    }
                }
                Err(err) => {
                    // Typed parse errors: unknown verbs name the negotiated
                    // version and the supported set (satellite 1).
                    if writer.write_all(err.reply(negotiated).render().as_bytes()).is_err() {
                        return;
                    }
                }
            }
        }
    }
}

/// The measured body of an `UPGRADE` drill: connect, arm background
/// suspicion, prove a healthy end-to-end wave, walk the rolling upgrade,
/// prove the post-upgrade wave. Separated from the handler so teardown
/// (shutdown + thread joins + permit release) runs on every exit path.
fn run_upgrade_drill(
    front: &mut FrontEndpoint,
    leaves: u32,
) -> Result<(Arc<SuspicionTable>, UpgradeReport), String> {
    let step = Duration::from_secs(20);
    front.await_connections(leaves, step).map_err(|e| format!("connect: {e}"))?;
    let table = front.maintenance().start_suspicion(PhiAccrualParams::default());
    let stream = front.open_stream(FilterKind::Concat).map_err(|e| format!("open stream: {e}"))?;

    front.broadcast(stream, 1, vec![]).map_err(|e| format!("pre-upgrade broadcast: {e}"))?;
    let pkt = front.gather(stream, 1, step).map_err(|e| format!("pre-upgrade gather: {e}"))?;
    if pkt.payload.len() != leaves as usize {
        return Err(format!("pre-upgrade wave incomplete: {} of {leaves}", pkt.payload.len()));
    }

    let report =
        front.maintenance().rolling_upgrade(step).map_err(|e| format!("rolling upgrade: {e}"))?;

    front.broadcast(stream, 2, vec![]).map_err(|e| format!("post-upgrade broadcast: {e}"))?;
    let pkt = front.gather(stream, 2, step).map_err(|e| format!("post-upgrade gather: {e}"))?;
    if pkt.payload.len() != leaves as usize {
        return Err(format!("post-upgrade wave incomplete: {} of {leaves}", pkt.payload.len()));
    }
    Ok((table, report))
}

/// Minimal HTTP/1.0 response for `GET /metrics` scrapes.
fn write_http_response<W: Write>(w: &mut W, daemon: &Daemon, path: &str) -> std::io::Result<()> {
    let (status, body) = if path == "/metrics" {
        ("200 OK", daemon.render_metrics())
    } else {
        ("404 Not Found", format!("no such path {path}\n"))
    };
    write!(
        w,
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    w.flush()
}

// ---------------------------------------------------------------------------
// Listeners
// ---------------------------------------------------------------------------

/// A running daemon's lifecycle handle: where it listens, and how to stop
/// it deterministically (used by tests and by `lmond`'s signal handling).
pub struct DaemonHandle {
    daemon: Arc<Daemon>,
    socket_path: Option<PathBuf>,
    tcp_addr: Option<SocketAddr>,
    accept_threads: Vec<std::thread::JoinHandle<()>>,
}

impl DaemonHandle {
    /// The service behind this handle (in-process inspection).
    pub fn daemon(&self) -> &Arc<Daemon> {
        &self.daemon
    }

    /// The Unix control socket path, when one is bound.
    pub fn socket_path(&self) -> Option<&PathBuf> {
        self.socket_path.as_ref()
    }

    /// The TCP control address, when one is bound.
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Block until shutdown is triggered (via a client `SHUTDOWN` or
    /// [`Daemon::begin_shutdown`]) and the accept loops exit.
    pub fn join(mut self) {
        for t in self.accept_threads.drain(..) {
            let _ = t.join();
        }
        self.cleanup_socket();
    }

    /// Trigger shutdown and join: [`Daemon::begin_shutdown`] pokes the
    /// accept loops awake, so no external client is needed.
    pub fn shutdown(self) {
        self.daemon.begin_shutdown();
        self.join();
    }

    fn cleanup_socket(&self) {
        #[cfg(unix)]
        if let Some(path) = &self.socket_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Start serving on pre-bound listeners. Binding first and starting second
/// is what makes lazy-start's bind-as-mutex sound: whoever owns a bound
/// listener owns the daemon role.
pub fn start_daemon(
    daemon: Arc<Daemon>,
    #[cfg(unix)] unix: Option<UnixListener>,
    tcp: Option<TcpListener>,
) -> DaemonResult<DaemonHandle> {
    let mut accept_threads = Vec::new();
    let mut socket_path = None;
    let mut tcp_addr = None;

    #[cfg(unix)]
    if let Some(listener) = unix {
        socket_path = listener.local_addr().ok().and_then(|a| a.as_pathname().map(PathBuf::from));
        let d = Arc::clone(&daemon);
        accept_threads.push(
            std::thread::Builder::new()
                .name("lmond-accept-unix".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if d.is_shutting_down() {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        spawn_conn_handler(&d, stream, |s| s.try_clone());
                    }
                })
                .map_err(DaemonError::Io)?,
        );
    }

    if let Some(listener) = tcp {
        tcp_addr = listener.local_addr().ok();
        let d = Arc::clone(&daemon);
        accept_threads.push(
            std::thread::Builder::new()
                .name("lmond-accept-tcp".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if d.is_shutting_down() {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        spawn_conn_handler(&d, stream, |s| s.try_clone());
                    }
                })
                .map_err(DaemonError::Io)?,
        );
    }

    {
        let mut ep = daemon.endpoints.lock();
        ep.socket_path = socket_path.clone();
        ep.tcp_addr = tcp_addr;
    }
    Ok(DaemonHandle { daemon, socket_path, tcp_addr, accept_threads })
}

/// Per-connection handler thread, with the connection cap applied.
fn spawn_conn_handler<S, F>(daemon: &Arc<Daemon>, stream: S, try_clone: F)
where
    S: std::io::Read + Write + Send + 'static,
    F: Fn(&S) -> std::io::Result<S>,
{
    let spawn = |f: Box<dyn FnOnce() + Send>| {
        std::thread::Builder::new().name("lmond-conn".into()).spawn(f).map(|_| ())
    };
    handle_conn_with(daemon, stream, try_clone, spawn);
}

/// [`spawn_conn_handler`] with the thread spawner injected, so tests can
/// force the spawn-failure path (EAGAIN under launch-storm thread/fd
/// pressure) deterministically.
fn handle_conn_with<S, F, Sp>(daemon: &Arc<Daemon>, stream: S, try_clone: F, spawn: Sp)
where
    S: std::io::Read + Write + Send + 'static,
    F: Fn(&S) -> std::io::Result<S>,
    Sp: FnOnce(Box<dyn FnOnce() + Send>) -> std::io::Result<()>,
{
    let Ok(mut writer) = try_clone(&stream) else { return };
    if daemon.active_conns.fetch_add(1, Ordering::SeqCst) >= daemon.cfg.max_connections {
        daemon.active_conns.fetch_sub(1, Ordering::SeqCst);
        let _ = writer
            .write_all(Reply::Err("busy: connection limit reached".into()).render().as_bytes());
        return;
    }
    // Spare write handle for the failure reply below: the primary pair
    // moves into the handler closure and is lost if the spawn fails.
    let spare = try_clone(&stream);
    let d = Arc::clone(daemon);
    if spawn(Box::new(move || {
        d.serve_conn(stream, &mut writer);
        d.active_conns.fetch_sub(1, Ordering::SeqCst);
    }))
    .is_err()
    {
        // Thread spawn failed (EAGAIN under the very pressure a launch
        // storm creates). Give the slot back — leaking it here would
        // permanently consume connection capacity — and tell the client
        // to retry rather than silently dropping the connection.
        daemon.active_conns.fetch_sub(1, Ordering::SeqCst);
        if let Ok(mut w) = spare {
            let _ = w.write_all(
                Reply::Err("busy: cannot spawn connection handler; retry".into())
                    .render()
                    .as_bytes(),
            );
        }
    }
}

/// Bind a Unix control socket (and optionally TCP) and serve.
///
/// An occupied socket path is claimed via [`crate::client::claim_unix_listener`]:
/// a stale corpse is reaped (under the reaper lock), but a *live* daemon is
/// an error — serving must never unlink another daemon's control socket and
/// split its clients.
#[cfg(unix)]
pub fn bind_and_start(
    cfg: DaemonConfig,
    socket_path: &std::path::Path,
    tcp: Option<SocketAddr>,
) -> DaemonResult<DaemonHandle> {
    let unix = crate::client::claim_unix_listener(socket_path)?;
    let tcp_listener = match tcp {
        Some(addr) => Some(TcpListener::bind(addr).map_err(DaemonError::Io)?),
        None => None,
    };
    let daemon = Daemon::new(cfg)?;
    start_daemon(daemon, Some(unix), tcp_listener)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory stream: reads yield immediate EOF (so an inline-run
    /// handler returns at once), writes land in a shared buffer.
    #[derive(Clone, Default)]
    struct FakeStream(Arc<Mutex<Vec<u8>>>);

    impl std::io::Read for FakeStream {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            Ok(0)
        }
    }

    impl Write for FakeStream {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn tiny_daemon() -> Arc<Daemon> {
        Daemon::new(DaemonConfig {
            backends: 1,
            cluster_nodes: 8,
            admission_limit: 4,
            queue_capacity: 16,
            ..DaemonConfig::default()
        })
        .unwrap()
    }

    /// Review regression: a failed handler-thread spawn (EAGAIN under the
    /// fd/thread pressure a launch storm creates) must give the connection
    /// slot back — before the fix each failure permanently consumed one
    /// until the daemon rejected all connections — and answer busy so the
    /// client retries instead of seeing a silent EOF.
    #[test]
    fn failed_handler_spawn_releases_connection_slot() {
        let daemon = tiny_daemon();
        let out = Arc::new(Mutex::new(Vec::new()));
        let stream = FakeStream(Arc::clone(&out));
        for _ in 0..3 {
            handle_conn_with(
                &daemon,
                stream.clone(),
                |s| Ok(s.clone()),
                |_handler| Err(std::io::Error::from_raw_os_error(11)), // EAGAIN
            );
        }
        assert_eq!(daemon.active_conns.load(Ordering::SeqCst), 0, "all slots returned");
        let text = String::from_utf8(out.lock().clone()).unwrap();
        assert!(text.contains("busy"), "client told to retry, got {text:?}");

        // A later connection (spawner healthy again, run inline) still
        // serves and releases its slot: capacity was not consumed.
        handle_conn_with(
            &daemon,
            stream.clone(),
            |s| Ok(s.clone()),
            |handler| {
                handler();
                Ok(())
            },
        );
        assert_eq!(daemon.active_conns.load(Ordering::SeqCst), 0);
    }

    fn fields(reply: &Reply) -> crate::control::ParsedReply {
        let rendered = reply.render();
        let header = rendered.lines().next().unwrap();
        crate::control::parse_reply_header(header).expect("OK reply").0
    }

    /// Tentpole: killing a whole group's FE re-homes its launch sessions
    /// onto a sibling shard under a bumped federation epoch, preserving
    /// the gsid (clients keep their handle across the failover).
    #[test]
    fn group_failover_rehomes_launch_sessions() {
        let daemon = Daemon::new(DaemonConfig {
            backends: 4,
            groups: 2,
            cluster_nodes: 8,
            admission_limit: 8,
            queue_capacity: 16,
            ..DaemonConfig::default()
        })
        .unwrap();
        assert_eq!(daemon.groups(), 2);

        let reply = daemon.dispatch(&Request::parse("LAUNCH psweep 2 1 sleeper").unwrap());
        let f = fields(&reply);
        let gsid: u64 = f.field_as("gsid").unwrap();
        let group: usize = f.field_as("group").unwrap();
        assert_eq!(group, daemon.group_of_app("psweep"));

        let report = daemon.fail_group(group);
        assert_eq!(report.epoch, 1, "first failover bumps the epoch to 1");
        assert_eq!(report.rehomed, 1, "the launch session follows its gsid");
        assert_eq!(report.dropped, 0);
        assert!(!daemon.shard(group).unwrap().alive);

        let f = fields(&daemon.dispatch(&Request::parse(&format!("STATUS {gsid}")).unwrap()));
        let new_group: usize = f.field_as("group").unwrap();
        assert_ne!(new_group, group, "session re-homed to a sibling shard");

        let f = fields(&daemon.dispatch(&Request::parse("STATUS").unwrap()));
        assert_eq!(f.field_as::<u64>("fed_epoch"), Some(1));
        assert_eq!(f.field_as::<u64>("fed_failovers"), Some(1));

        // The re-homed session is still fully manageable by its old gsid.
        let reply = daemon.dispatch(&Request::parse(&format!("KILL {gsid}")).unwrap());
        assert!(matches!(reply, Reply::Ok(_)), "kill after failover: {}", reply.render());

        // New launches for the dead group's keyspace land on the sibling.
        let f = fields(&daemon.dispatch(&Request::parse("LAUNCH psweep 2 1 sleeper").unwrap()));
        assert_eq!(f.field_as::<usize>("group"), Some(new_group));
    }
}
