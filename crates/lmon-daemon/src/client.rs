//! Client side of the control protocol, including lazy daemon start.
//!
//! # The bind/connect race, and why binding is the mutex
//!
//! "Lazy start" means: a client that finds no daemon running becomes the
//! daemon. The naive version — `connect()`, and on failure `bind()` and
//! serve — races: two clients can both fail the connect and both try to
//! become the daemon, and with a `remove_file` sprinkled in, the second
//! one can silently unlink the *winner's* live socket, stranding every
//! future client. The fix ([`connect_or_start`]) leans on the only
//! operation the OS already serializes:
//!
//! 1. Try to `connect`. Success → done, a daemon is serving.
//! 2. On `NotFound` / `ConnectionRefused`, try to **bind**. The kernel
//!    allows exactly one binder per path, so the bind is the mutex: the
//!    winner starts the daemon and then connects to itself.
//! 3. A *refused* connect with the file present may be a stale socket
//!    (daemon crashed without unlinking) — but it may also be a live
//!    daemon with a momentarily full backlog. Only after a confirming
//!    second refusal is the path even considered stale, and the reap
//!    itself happens under a cross-process file lock with a re-verify
//!    (see [the reaper lock](#the-reaper-lock) below). The loser of any
//!    subsequent bind race never unlinks: it backs off and reconnects.
//! 4. Losers retry connect with exponential backoff (10ms → 500ms),
//!    bounded; the winner is meanwhile inside `Daemon::new` bringing the
//!    front-end pool up, which is why the budget is generous.
//!
//! # The reaper lock
//!
//! Check-then-unlink of a stale socket is inherently TOCTOU: between this
//! process's confirming refused connect and its `remove_file`, a racer can
//! reap the corpse itself and bind a live listener at the same path — and
//! the late `remove_file` would then unlink the *live* daemon's socket.
//! POSIX has no "unlink if still the inode I checked", so the reap is
//! serialized through an exclusive [`std::fs::File::lock`] on a sibling
//! `<socket>.lock` file: under the lock, re-verify the path still refuses,
//! unlink, and bind — all before releasing. This is airtight because a
//! live socket can only appear at an *occupied* path after an unlink
//! (`bind(2)` never replaces an existing file), and every unlink goes
//! through the lock. Binds at a *free* path stay lock-free: they cannot
//! invalidate a reaper's refused-verify, whose path is still occupied.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use crate::control::{parse_reply_header, ParsedReply, HELLO_BANNER, PROTOCOL_VERSION};
use crate::daemon::{start_daemon, Daemon, DaemonConfig, DaemonHandle};
use crate::error::{DaemonError, DaemonResult};
use crate::responses::{
    AttachResponse, LaunchResponse, RunJobResponse, SessionStatusResponse, StatusResponse,
    UpgradeResponse,
};

/// Connect retry schedule for lazy start: exponential backoff from
/// [`BACKOFF_START`] doubling to at most [`BACKOFF_CAP`], [`MAX_RETRIES`]
/// times (~3.8s worst case — enough to cover a cold daemon boot).
pub const BACKOFF_START: Duration = Duration::from_millis(10);
/// See [`BACKOFF_START`].
pub const BACKOFF_CAP: Duration = Duration::from_millis(500);
/// See [`BACKOFF_START`].
pub const MAX_RETRIES: usize = 10;

/// Either transport the control protocol runs over.
enum ClientStream {
    #[cfg(unix)]
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            ClientStream::Unix(s) => s.read(buf),
            ClientStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            #[cfg(unix)]
            ClientStream::Unix(s) => s.write(buf),
            ClientStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            ClientStream::Unix(s) => s.flush(),
            ClientStream::Tcp(s) => s.flush(),
        }
    }
}

impl ClientStream {
    fn set_read_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        match self {
            #[cfg(unix)]
            ClientStream::Unix(s) => s.set_read_timeout(t),
            ClientStream::Tcp(s) => s.set_read_timeout(t),
        }
    }
}

/// A connected control client (one request/reply at a time).
pub struct DaemonClient {
    reader: BufReader<ClientStream>,
    writer: ClientStream,
    /// The daemon's hello banner, kept for version checks/debugging.
    banner: String,
    /// Protocol version negotiated from the banner (see
    /// [`DaemonClient::negotiated_version`]).
    negotiated: u32,
}

impl DaemonClient {
    /// Connect over the Unix control socket.
    #[cfg(unix)]
    pub fn connect_unix(path: &Path) -> DaemonResult<DaemonClient> {
        let stream = UnixStream::connect(path)?;
        let writer = ClientStream::Unix(stream.try_clone()?);
        Self::handshake(ClientStream::Unix(stream), writer)
    }

    /// Connect over TCP.
    pub fn connect_tcp(addr: SocketAddr) -> DaemonResult<DaemonClient> {
        let stream = TcpStream::connect(addr)?;
        let writer = ClientStream::Tcp(stream.try_clone()?);
        Self::handshake(ClientStream::Tcp(stream), writer)
    }

    fn handshake(read_half: ClientStream, mut writer: ClientStream) -> DaemonResult<DaemonClient> {
        read_half.set_read_timeout(Some(crate::control::CLIENT_REPLY_TIMEOUT))?;
        let mut reader = BufReader::new(read_half);
        // Client speaks first (see `control` docs): offer our max version
        // and take whatever the server's banner answers. A v1 server
        // ignores the argument and banners `LMOND 1`, so the handshake
        // line is both the v2 offer and the v1-compatible hello.
        writeln!(writer, "HELLO {PROTOCOL_VERSION}")?;
        writer.flush()?;
        let mut banner = String::new();
        reader.read_line(&mut banner)?;
        let banner = banner.trim_end().to_string();
        if !banner.starts_with("LMOND") {
            return Err(DaemonError::Protocol(format!(
                "unexpected hello {banner:?} (want {HELLO_BANNER:?})"
            )));
        }
        // Negotiated version = min(ours, the server's banner version).
        // A malformed/absent version token is treated as a v1 server.
        let negotiated = banner
            .split_whitespace()
            .nth(1)
            .and_then(|v| v.parse::<u32>().ok())
            .unwrap_or(1)
            .min(PROTOCOL_VERSION);
        Ok(DaemonClient { reader, writer, banner, negotiated })
    }

    /// The daemon's hello banner (e.g. `"LMOND 2 versions=1,2"`).
    pub fn banner(&self) -> &str {
        &self.banner
    }

    /// The control-protocol version this connection settled on: the lower
    /// of the client's [`PROTOCOL_VERSION`] and the server's banner.
    pub fn negotiated_version(&self) -> u32 {
        self.negotiated
    }

    /// Send one request line and return the reply *bytes* verbatim —
    /// header line plus any body lines, trailing newlines intact. This is
    /// the raw-scrape escape hatch the typed wrappers are built over;
    /// `ERR` replies come back as `Ok(raw line)` here, not as errors.
    pub fn request_raw(&mut self, line: &str) -> DaemonResult<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut raw = String::new();
        if self.reader.read_line(&mut raw)? == 0 {
            return Err(DaemonError::Protocol("daemon closed the connection".into()));
        }
        let body_lines = match parse_reply_header(raw.trim_end()) {
            Ok((_, n)) => n.unwrap_or(0),
            Err(_) => 0, // ERR replies are single-line
        };
        for _ in 0..body_lines {
            let mut l = String::new();
            if self.reader.read_line(&mut l)? == 0 {
                return Err(DaemonError::Protocol("truncated multi-line reply".into()));
            }
            raw.push_str(&l);
        }
        Ok(raw)
    }

    /// Send one request line and read its (possibly multi-line) reply,
    /// parsed into the field bag. `ERR` replies become
    /// [`DaemonError::Remote`].
    pub fn request(&mut self, line: &str) -> DaemonResult<ParsedReply> {
        let raw = self.request_raw(line)?;
        let mut lines = raw.lines();
        let header = lines.next().unwrap_or("");
        let (mut reply, _) = parse_reply_header(header).map_err(DaemonError::Remote)?;
        reply.body.extend(lines.map(str::to_string));
        Ok(reply)
    }

    // --- typed wrappers ---------------------------------------------------

    /// Liveness probe.
    pub fn ping(&mut self) -> DaemonResult<()> {
        self.request("PING").map(|_| ())
    }

    /// Launch a session; returns the typed [`LaunchResponse`] (gsid,
    /// placement, admission/launch timings).
    pub fn launch(
        &mut self,
        app: &str,
        nodes: usize,
        tasks_per_node: usize,
        body: &str,
    ) -> DaemonResult<LaunchResponse> {
        let reply = self.request(&format!("LAUNCH {app} {nodes} {tasks_per_node} {body}"))?;
        LaunchResponse::from_reply(reply)
    }

    /// Start a plain job (no tool attached); the reply's `pid` is what a
    /// later [`DaemonClient::attach`] targets.
    pub fn run_job(
        &mut self,
        app: &str,
        nodes: usize,
        tasks_per_node: usize,
    ) -> DaemonResult<RunJobResponse> {
        let reply = self.request(&format!("RUNJOB {app} {nodes} {tasks_per_node}"))?;
        RunJobResponse::from_reply(reply)
    }

    /// Attach tool daemons to running jobs by launcher pid; the reply
    /// carries one daemon-wide session id per pid, in request order.
    pub fn attach(&mut self, pids: &[u64], body: &str) -> DaemonResult<AttachResponse> {
        if pids.is_empty() {
            return Err(DaemonError::Protocol("attach needs at least one pid".into()));
        }
        let pid_list = pids.iter().map(|p| p.to_string()).collect::<Vec<_>>().join(" ");
        let reply = self.request(&format!("ATTACH {pid_list} {body}"))?;
        AttachResponse::from_reply(reply)
    }

    /// Run a rolling-upgrade drill (`None` = the daemon's default shape).
    pub fn upgrade(&mut self, shape: Option<&str>) -> DaemonResult<UpgradeResponse> {
        let reply = match shape {
            Some(s) => self.request(&format!("UPGRADE {s}"))?,
            None => self.request("UPGRADE")?,
        };
        UpgradeResponse::from_reply(reply)
    }

    /// Daemon-wide status.
    pub fn status(&mut self) -> DaemonResult<StatusResponse> {
        let reply = self.request("STATUS")?;
        StatusResponse::from_reply(reply)
    }

    /// One session's status.
    pub fn session_status(&mut self, gsid: u64) -> DaemonResult<SessionStatusResponse> {
        let reply = self.request(&format!("STATUS {gsid}"))?;
        SessionStatusResponse::from_reply(reply)
    }

    /// Detach a session (job keeps running).
    pub fn detach(&mut self, gsid: u64) -> DaemonResult<()> {
        self.request(&format!("DETACH {gsid}")).map(|_| ())
    }

    /// Kill a session (allocation released).
    pub fn kill(&mut self, gsid: u64) -> DaemonResult<()> {
        self.request(&format!("KILL {gsid}")).map(|_| ())
    }

    /// Fetch the Prometheus exposition text.
    pub fn metrics(&mut self) -> DaemonResult<String> {
        let reply = self.request("METRICS")?;
        let mut out = reply.body.join("\n");
        out.push('\n');
        Ok(out)
    }

    /// Ask the daemon to shut down.
    pub fn shutdown_daemon(&mut self) -> DaemonResult<()> {
        self.request("SHUTDOWN").map(|_| ())
    }
}

// ---------------------------------------------------------------------------
// Lazy start
// ---------------------------------------------------------------------------

/// What [`connect_or_start`] produced.
pub enum LazyStartOutcome {
    /// A daemon was already serving; here's a connection to it.
    Connected(DaemonClient),
    /// This process won the bind race and *is* now the daemon; it also
    /// gets a self-connection so it can be its own first client.
    Started {
        /// Lifecycle handle for the freshly started daemon.
        handle: DaemonHandle,
        /// A control connection to the daemon just started.
        client: DaemonClient,
    },
}

impl LazyStartOutcome {
    /// The connection, whichever side of the race this was.
    pub fn into_client(self) -> DaemonClient {
        match self {
            LazyStartOutcome::Connected(c) => c,
            LazyStartOutcome::Started { client, .. } => client,
        }
    }

    /// True when this process became the daemon.
    pub fn started_daemon(&self) -> bool {
        matches!(self, LazyStartOutcome::Started { .. })
    }
}

/// What taking over a refused (presumed-stale) socket path produced.
#[cfg(unix)]
enum Takeover {
    /// The path turned out to be live after all (a racer reaped and rebound
    /// it first, or the daemon's backlog drained): here's the connection.
    Live(UnixStream),
    /// The corpse was reaped and the path bound: the caller is the daemon.
    Bound(UnixListener),
    /// A non-cooperating binder took the path between the unlink and the
    /// bind; back off and reconnect from the top.
    Lost,
}

/// Reap a stale socket under the cross-process reaper lock (module docs):
/// re-verify the path still refuses *while holding the lock*, and only then
/// unlink and bind. Never unlinks a live daemon's socket.
#[cfg(unix)]
fn takeover_stale(socket_path: &Path) -> DaemonResult<Takeover> {
    let mut lock_path = socket_path.as_os_str().to_os_string();
    lock_path.push(".lock");
    let lock =
        std::fs::File::options().create(true).truncate(false).write(true).open(&lock_path)?;
    // Exclusive across processes; released when `lock` drops (fd close).
    lock.lock()?;

    match UnixStream::connect(socket_path) {
        Ok(stream) => return Ok(Takeover::Live(stream)),
        Err(e) if e.kind() == ErrorKind::ConnectionRefused => {
            // Still a corpse, and it stays one until we release the lock:
            // a live socket can only appear here via someone else's unlink,
            // and unlinks are serialized through this lock.
            match std::fs::remove_file(socket_path) {
                Ok(()) => {}
                Err(e) if e.kind() == ErrorKind::NotFound => {}
                Err(e) => return Err(DaemonError::Io(e)),
            }
        }
        Err(e) if e.kind() == ErrorKind::NotFound => {}
        Err(e) => return Err(DaemonError::Io(e)),
    }
    match UnixListener::bind(socket_path) {
        Ok(listener) => Ok(Takeover::Bound(listener)),
        Err(e) if e.kind() == ErrorKind::AddrInUse => Ok(Takeover::Lost),
        Err(e) => Err(DaemonError::Io(e)),
    }
}

/// Bind `socket_path` for serving, *refusing to displace a live daemon*.
///
/// A free path is bound directly. An occupied path is probed: a live daemon
/// is an error ("already serving"), a stale corpse is reaped under the
/// reaper lock (module docs) and the path rebound. This is what `lmond
/// serve` and [`crate::daemon::bind_and_start`] use — the naive
/// `remove_file`-then-bind would unlink a live daemon's socket and split
/// clients across two daemons.
#[cfg(unix)]
pub fn claim_unix_listener(socket_path: &Path) -> DaemonResult<UnixListener> {
    match UnixListener::bind(socket_path) {
        Ok(listener) => return Ok(listener),
        Err(e) if e.kind() == ErrorKind::AddrInUse => {}
        Err(e) => return Err(DaemonError::Io(e)),
    }
    match takeover_stale(socket_path)? {
        Takeover::Live(_) => Err(DaemonError::LazyStart(format!(
            "a daemon is already serving on {}",
            socket_path.display()
        ))),
        Takeover::Bound(listener) => Ok(listener),
        Takeover::Lost => {
            Err(DaemonError::LazyStart(format!("lost the bind race for {}", socket_path.display())))
        }
    }
}

/// Connect to the daemon at `socket_path`, lazily starting one (with
/// `make_daemon`) if none is serving. Safe to race from many processes or
/// threads: the socket bind is the mutex, so exactly one caller starts a
/// daemon. See the module docs for the full protocol.
#[cfg(unix)]
pub fn connect_or_start(
    socket_path: &Path,
    make_daemon: impl FnOnce() -> DaemonResult<Arc<Daemon>>,
) -> DaemonResult<LazyStartOutcome> {
    let mut make_daemon = Some(make_daemon);
    let mut backoff = BACKOFF_START;
    let mut stale_confirmed = false;
    let mut last_err: Option<std::io::Error> = None;

    for _attempt in 0..MAX_RETRIES {
        // Step 1: is someone already serving?
        match UnixStream::connect(socket_path) {
            Ok(stream) => {
                let writer = ClientStream::Unix(stream.try_clone()?);
                return DaemonClient::handshake(ClientStream::Unix(stream), writer)
                    .map(LazyStartOutcome::Connected);
            }
            Err(e) if e.kind() == ErrorKind::NotFound => {
                // No socket file: clean field, race for the bind below.
            }
            Err(e) if e.kind() == ErrorKind::ConnectionRefused => {
                // A file exists but nobody accepts. Either a stale socket
                // from a crashed daemon, or a live daemon with a full
                // backlog. Never unlink on first sight — require a second
                // refused connect (after a backoff) before declaring it
                // stale, so a loaded-but-live daemon is never destroyed.
                if !stale_confirmed {
                    stale_confirmed = true;
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(BACKOFF_CAP);
                    continue;
                }
                stale_confirmed = false;
                // Reap under the reaper lock (module docs): re-verified,
                // so a racer that already rebound the path is *joined*,
                // never unlinked.
                match takeover_stale(socket_path)? {
                    Takeover::Live(stream) => {
                        let writer = ClientStream::Unix(stream.try_clone()?);
                        return DaemonClient::handshake(ClientStream::Unix(stream), writer)
                            .map(LazyStartOutcome::Connected);
                    }
                    Takeover::Bound(listener) => {
                        return become_daemon(listener, &mut make_daemon, socket_path);
                    }
                    Takeover::Lost => {
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(BACKOFF_CAP);
                    }
                }
                continue;
            }
            Err(e) => return Err(DaemonError::Io(e)),
        }

        // Step 2: race for the bind. The kernel picks exactly one winner.
        match UnixListener::bind(socket_path) {
            Ok(listener) => {
                return become_daemon(listener, &mut make_daemon, socket_path);
            }
            Err(e) if e.kind() == ErrorKind::AddrInUse => {
                // Lost the race: the winner is booting its front-end pool.
                // Back off and go back to connecting — never unlink here.
                last_err = Some(e);
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_CAP);
            }
            Err(e) => return Err(DaemonError::Io(e)),
        }
    }

    Err(DaemonError::LazyStart(format!(
        "no daemon became reachable at {} after {MAX_RETRIES} attempts (last: {})",
        socket_path.display(),
        last_err.map_or_else(|| "connect refused".into(), |e| e.to_string()),
    )))
}

/// Bind won (directly or via reap): construct the daemon, serve on the
/// listener, and self-connect as the first client.
#[cfg(unix)]
fn become_daemon<F: FnOnce() -> DaemonResult<Arc<Daemon>>>(
    listener: UnixListener,
    make_daemon: &mut Option<F>,
    socket_path: &Path,
) -> DaemonResult<LazyStartOutcome> {
    let daemon = match make_daemon.take() {
        Some(f) => f()?,
        // Defensive: can't happen (callers return on the first bind win),
        // but never re-run a FnOnce.
        None => return Err(DaemonError::LazyStart("daemon factory consumed".into())),
    };
    let handle = start_daemon(daemon, Some(listener), None)?;
    let client = DaemonClient::connect_unix(socket_path)?;
    Ok(LazyStartOutcome::Started { handle, client })
}

/// Test-sized lazy start: defaults, small pool. Production callers build
/// their own factory around [`Daemon::new`].
#[cfg(unix)]
pub fn connect_or_start_default(socket_path: &Path) -> DaemonResult<LazyStartOutcome> {
    connect_or_start(socket_path, || Daemon::new(DaemonConfig::default()))
}

/// A collision-resistant scratch path for sockets in tests and the CLI
/// (`Path::join` of the temp dir, the pid, and a caller-chosen tag).
pub fn scratch_socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("lmond-{}-{tag}.sock", std::process::id()))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn tiny_config() -> DaemonConfig {
        DaemonConfig {
            backends: 1,
            cluster_nodes: 8,
            admission_limit: 4,
            queue_capacity: 16,
            ..DaemonConfig::default()
        }
    }

    /// Satellite (c)'s regression: two threads race connect-or-start on the
    /// same fresh path. Exactly one must become the daemon; both must end
    /// up with working connections; nobody may unlink the winner's socket.
    #[test]
    fn lazy_start_race_elects_exactly_one_daemon() {
        let path = scratch_socket_path("race");
        let _ = std::fs::remove_file(&path);
        let barrier = Arc::new(Barrier::new(2));
        let started = Arc::new(AtomicUsize::new(0));

        let mut joins = Vec::new();
        for _ in 0..2 {
            let path = path.clone();
            let barrier = Arc::clone(&barrier);
            let started = Arc::clone(&started);
            joins.push(std::thread::spawn(move || {
                barrier.wait(); // maximal overlap: both race the same instant
                let outcome = connect_or_start(&path, || Daemon::new(tiny_config())).unwrap();
                if outcome.started_daemon() {
                    started.fetch_add(1, Ordering::SeqCst);
                }
                // `into_client` drops the winner's DaemonHandle; the accept
                // loop keeps serving (threads are detached), so the loser's
                // ping still works whichever thread finishes first.
                let mut client = outcome.into_client();
                client.ping().unwrap();
                client
            }));
        }
        let clients: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert_eq!(started.load(Ordering::SeqCst), 1, "exactly one thread became the daemon");
        drop(clients);
        let _ = std::fs::remove_file(&path);
    }

    /// A stale socket file (daemon died without unlinking) must be detected
    /// and replaced — but only after the confirming second refusal.
    #[test]
    fn stale_socket_is_detected_and_replaced() {
        let path = scratch_socket_path("stale");
        let _ = std::fs::remove_file(&path);
        {
            // Bind and immediately drop the listener: the file stays behind,
            // exactly like a crashed daemon.
            let _orphan = UnixListener::bind(&path).unwrap();
        }
        assert!(path.exists(), "precondition: stale socket file left behind");
        let outcome = connect_or_start(&path, || Daemon::new(tiny_config())).unwrap();
        assert!(outcome.started_daemon(), "stale socket must not block lazy start");
        let mut client = outcome.into_client();
        client.ping().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    /// Review regression (stale-reap TOCTOU): many threads race
    /// connect_or_start against a path seeded with a stale corpse. The reap
    /// happens under the reaper lock with a re-verify, so the winner's live
    /// socket can never be unlinked by a late reaper — exactly one daemon
    /// is elected and every thread gets a working connection.
    #[test]
    fn stale_reap_race_never_unlinks_the_winner() {
        let path = scratch_socket_path("reap-race");
        let _ = std::fs::remove_file(&path);
        {
            let _orphan = UnixListener::bind(&path).unwrap();
        }
        assert!(path.exists(), "precondition: stale socket file left behind");

        const RACERS: usize = 4;
        let barrier = Arc::new(Barrier::new(RACERS));
        let started = Arc::new(AtomicUsize::new(0));
        let mut joins = Vec::new();
        for _ in 0..RACERS {
            let path = path.clone();
            let barrier = Arc::clone(&barrier);
            let started = Arc::clone(&started);
            joins.push(std::thread::spawn(move || {
                barrier.wait();
                let outcome = connect_or_start(&path, || Daemon::new(tiny_config())).unwrap();
                if outcome.started_daemon() {
                    started.fetch_add(1, Ordering::SeqCst);
                }
                let mut client = outcome.into_client();
                client.ping().unwrap();
                client
            }));
        }
        let clients: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert_eq!(started.load(Ordering::SeqCst), 1, "exactly one thread became the daemon");
        drop(clients);
        let _ = std::fs::remove_file(&path);
    }

    /// Review regression: serving (`bind_and_start`, i.e. `lmond serve`)
    /// must refuse to displace a live daemon instead of unlinking its
    /// socket and splitting clients across two daemons.
    #[test]
    fn serve_refuses_to_displace_live_daemon() {
        use crate::daemon::bind_and_start;

        let path = scratch_socket_path("serve-live");
        let _ = std::fs::remove_file(&path);
        let first = bind_and_start(tiny_config(), &path, None).unwrap();

        let second = bind_and_start(tiny_config(), &path, None);
        let err = second.err().expect("second serve on a live socket must fail");
        assert!(err.to_string().contains("already serving"), "error names the conflict: {err}");

        // The original daemon is untouched and still reachable.
        let mut client = DaemonClient::connect_unix(&path).unwrap();
        client.ping().unwrap();
        drop(first);
        let _ = std::fs::remove_file(&path);
    }

    /// ...but a stale corpse must not block serving: `bind_and_start` reaps
    /// it (under the reaper lock) and binds.
    #[test]
    fn serve_reaps_stale_socket() {
        use crate::daemon::bind_and_start;

        let path = scratch_socket_path("serve-stale");
        let _ = std::fs::remove_file(&path);
        {
            let _orphan = UnixListener::bind(&path).unwrap();
        }
        let handle = bind_and_start(tiny_config(), &path, None).unwrap();
        let mut client = DaemonClient::connect_unix(&path).unwrap();
        client.ping().unwrap();
        drop(handle);
        let _ = std::fs::remove_file(&path);
    }

    /// A *live* daemon must never be unlinked: a second connect_or_start
    /// finds it and connects instead of starting another.
    #[test]
    fn live_daemon_is_joined_not_replaced() {
        let path = scratch_socket_path("join");
        let _ = std::fs::remove_file(&path);
        let first = connect_or_start(&path, || Daemon::new(tiny_config())).unwrap();
        assert!(first.started_daemon());
        let second =
            connect_or_start(&path, || panic!("second caller must not construct a daemon"))
                .unwrap();
        assert!(!second.started_daemon());
        let mut c = second.into_client();
        c.ping().unwrap();
        drop(first);
        let _ = std::fs::remove_file(&path);
    }
}
