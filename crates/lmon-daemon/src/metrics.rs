//! Prometheus exposition rendering for the daemon's `/metrics` endpoint.
//!
//! Three existing observability surfaces are exported, unchanged, under a
//! stable `lmond_` namespace:
//!
//! * `lmon_core::fe::TransportStats` — per-front-end mux accounting (the
//!   paper's one-channel-per-component invariant as live gauges);
//! * `lmon_tbon::OverlayStatsSnapshot` — overlay recovery counters
//!   (DESIGN.md §9);
//! * `lmon_core::fe::HealthSummary` — the bounded session-health ledger.
//!
//! Plus the daemon's own admission/session counters. Everything is plain
//! text/plain; the renderer is deliberately dependency-free (no registry
//! crate exists offline) and the format is pinned by unit tests: every
//! sample line is `name{label="v",...} value` or `name value`, with
//! `# HELP`/`# TYPE` comments preceding each family.

use std::time::Duration;

use lmon_core::fe::{HealthSummary, TransportStats};
use lmon_core::HealthState;
use lmon_tbon::OverlayStatsSnapshot;

use crate::admission::AdmissionStats;

/// Everything the renderer needs, gathered by the daemon at scrape time.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Daemon uptime.
    pub uptime: Duration,
    /// Federation groups the FE pool is sharded into (DESIGN.md §13).
    pub fed_groups: usize,
    /// Inter-group federation epoch (bumps on every group failover).
    pub fed_epoch: u64,
    /// Whole-group FE failovers served.
    pub fed_failovers: u64,
    /// Live (admitted, not yet detached/killed) sessions.
    pub sessions_active: usize,
    /// Lifetime launches served successfully.
    pub launches_total: u64,
    /// Lifetime launches that failed after admission.
    pub launch_failures_total: u64,
    /// Admission counters.
    pub admission: AdmissionStats,
    /// One entry per pooled front end, index = `fe` label.
    pub transports: Vec<TransportStats>,
    /// One entry per pooled front end, index = `fe` label.
    pub healths: Vec<HealthSummary>,
    /// Aggregated overlay recovery counters.
    pub overlay: OverlayStatsSnapshot,
    /// Sessions per current health state, across the pool.
    pub health_states: Vec<(HealthState, usize)>,
    /// Per-child phi-accrual suspicion levels from recent upgrade drills:
    /// `(overlay index, "level:index" child label, level)` with level
    /// 0 = alive, 1 = suspect, 2 = dead (DESIGN.md §12).
    pub suspicion_levels: Vec<(usize, String, u8)>,
}

struct Renderer {
    out: String,
}

impl Renderer {
    fn family(&mut self, name: &str, kind: &str, help: &str) {
        self.out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    }

    fn sample(&mut self, name: &str, labels: &[(&str, String)], value: impl std::fmt::Display) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                self.out.push_str(&format!("{k}=\"{v}\""));
            }
            self.out.push('}');
        }
        self.out.push_str(&format!(" {value}\n"));
    }

    fn gauge(&mut self, name: &str, help: &str, value: impl std::fmt::Display) {
        self.family(name, "gauge", help);
        self.sample(name, &[], value);
    }

    fn counter(&mut self, name: &str, help: &str, value: impl std::fmt::Display) {
        self.family(name, "counter", help);
        self.sample(name, &[], value);
    }
}

/// Render the snapshot in Prometheus exposition format.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut r = Renderer { out: String::new() };

    // --- daemon + admission --------------------------------------------
    r.gauge("lmond_uptime_seconds", "Daemon uptime.", snap.uptime.as_secs_f64());
    r.gauge("lmond_fed_groups", "Federation groups in the FE shard pool.", snap.fed_groups);
    r.gauge("lmond_fed_epoch", "Inter-group federation epoch.", snap.fed_epoch);
    r.counter("lmond_fed_failovers_total", "Whole-group FE failovers served.", snap.fed_failovers);
    r.gauge("lmond_sessions_active", "Sessions currently admitted and live.", snap.sessions_active);
    r.counter("lmond_launches_total", "Successful launches served.", snap.launches_total);
    r.counter(
        "lmond_launch_failures_total",
        "Launches that failed after admission.",
        snap.launch_failures_total,
    );
    r.gauge(
        "lmond_admission_in_flight",
        "Sessions holding an admission permit.",
        snap.admission.in_flight,
    );
    r.gauge(
        "lmond_admission_queue_depth",
        "Launch requests blocked in the admission queue.",
        snap.admission.waiting,
    );
    r.gauge(
        "lmond_admission_peak_in_flight",
        "High-water mark of concurrently admitted sessions.",
        snap.admission.peak_in_flight,
    );
    r.gauge(
        "lmond_admission_peak_queue_depth",
        "High-water mark of the admission queue.",
        snap.admission.peak_waiting,
    );
    r.counter(
        "lmond_admission_admitted_total",
        "Requests admitted.",
        snap.admission.admitted_total,
    );
    r.counter(
        "lmond_admission_rejected_total",
        "Requests rejected (queue full or shutdown).",
        snap.admission.rejected_total,
    );
    r.counter(
        "lmond_admission_released_total",
        "Permits released by ended sessions.",
        snap.admission.released_total,
    );

    // --- TransportStats, one series per pooled FE ----------------------
    let fe_label = |i: usize| vec![("fe", i.to_string())];
    macro_rules! per_fe_gauge {
        ($name:literal, $help:literal, $field:ident) => {
            r.family($name, "gauge", $help);
            for (i, t) in snap.transports.iter().enumerate() {
                r.sample($name, &fe_label(i), t.$field);
            }
        };
    }
    per_fe_gauge!(
        "lmond_transport_be_physical_links",
        "Physical channels to the BE component (1 by mux construction).",
        be_physical_links
    );
    per_fe_gauge!(
        "lmond_transport_be_sessions",
        "Logical BE sessions multiplexed on the link.",
        be_sessions
    );
    per_fe_gauge!(
        "lmond_transport_be_peak_sessions",
        "High-water mark of simultaneous BE sessions.",
        be_peak_sessions
    );
    per_fe_gauge!(
        "lmond_transport_mw_physical_links",
        "Physical channels to the MW component.",
        mw_physical_links
    );
    per_fe_gauge!(
        "lmond_transport_mw_sessions",
        "Logical MW sessions multiplexed on the link.",
        mw_sessions
    );
    per_fe_gauge!(
        "lmond_transport_mw_peak_sessions",
        "High-water mark of simultaneous MW sessions.",
        mw_peak_sessions
    );
    per_fe_gauge!(
        "lmond_transport_engine_physical_links",
        "Physical channels carrying FE-to-engine control traffic.",
        engine_physical_links
    );
    per_fe_gauge!(
        "lmond_transport_engine_sessions",
        "Logical control sessions on the engine link.",
        engine_sessions
    );

    // --- OverlayStats ---------------------------------------------------
    macro_rules! overlay_counter {
        ($name:literal, $help:literal, $field:ident) => {
            r.counter($name, $help, snap.overlay.$field);
        };
    }
    overlay_counter!(
        "lmond_overlay_stale_packets_dropped_total",
        "Up-packets dropped for carrying a pre-repair epoch.",
        stale_packets_dropped
    );
    overlay_counter!(
        "lmond_overlay_stale_waves_dropped_total",
        "Aggregation waves discarded at an epoch bump.",
        stale_waves_dropped
    );
    overlay_counter!(
        "lmond_overlay_severed_packets_discarded_total",
        "Up-packets discarded on severed links.",
        severed_packets_discarded
    );
    overlay_counter!(
        "lmond_overlay_link_down_notices_total",
        "Deterministic link-close notices sent.",
        link_down_notices
    );
    overlay_counter!(
        "lmond_overlay_deaths_detected_total",
        "Node deaths detected at the front end.",
        deaths_detected
    );
    overlay_counter!("lmond_overlay_pings_sent_total", "Heartbeat probes broadcast.", pings_sent);
    overlay_counter!(
        "lmond_overlay_pongs_received_total",
        "Heartbeat responses received.",
        pongs_received
    );
    overlay_counter!(
        "lmond_overlay_repairs_completed_total",
        "Grandparent-adoption repairs completed.",
        repairs_completed
    );
    overlay_counter!(
        "lmond_overlay_orphans_adopted_total",
        "Orphaned daemons re-parented by repairs.",
        orphans_adopted
    );

    // --- planned maintenance (DESIGN.md §12) ----------------------------
    overlay_counter!(
        "lmond_overlay_drains_completed_total",
        "Planned drains completed (comm daemon flushed and detached).",
        drains_completed
    );
    overlay_counter!(
        "lmond_overlay_spares_registered_total",
        "Hot spares registered at overlay build time.",
        spares_registered
    );
    overlay_counter!(
        "lmond_overlay_spares_activated_total",
        "Hot spares consumed by repairs or upgrades.",
        spares_activated
    );
    r.gauge(
        "lmond_overlay_spares_idle",
        "Hot spares still idle in the pool (registered minus activated).",
        snap.overlay.spares_registered.saturating_sub(snap.overlay.spares_activated),
    );
    overlay_counter!(
        "lmond_overlay_beats_received_total",
        "Liveness beats received by suspicion monitors.",
        beats_received
    );
    overlay_counter!(
        "lmond_overlay_suspicions_raised_total",
        "Nodes whose phi crossed the suspect threshold.",
        suspicions_raised
    );
    overlay_counter!(
        "lmond_overlay_suspicion_deaths_total",
        "Silent deaths declared by the phi-accrual detector.",
        suspicion_deaths
    );
    overlay_counter!(
        "lmond_overlay_upgrades_completed_total",
        "Comm daemons replaced by completed upgrade steps.",
        upgrades_completed
    );
    overlay_counter!(
        "lmond_overlay_upgrades_failed_total",
        "Upgrade steps that failed and fell back to the repair path.",
        upgrades_failed
    );
    r.family(
        "lmond_overlay_suspicion_level",
        "gauge",
        "Per-child phi-accrual suspicion (0=alive, 1=suspect, 2=dead).",
    );
    for (overlay, child, level) in &snap.suspicion_levels {
        r.sample(
            "lmond_overlay_suspicion_level",
            &[("overlay", overlay.to_string()), ("child", child.clone())],
            level,
        );
    }

    // --- HealthMonitor ledger -------------------------------------------
    macro_rules! per_fe_health {
        ($name:literal, $kind:literal, $help:literal, $field:ident) => {
            r.family($name, $kind, $help);
            for (i, h) in snap.healths.iter().enumerate() {
                r.sample($name, &fe_label(i), h.$field);
            }
        };
    }
    per_fe_health!(
        "lmond_health_live_sessions",
        "gauge",
        "Sessions with a live health monitor.",
        live_sessions
    );
    per_fe_health!(
        "lmond_health_retired_sessions",
        "gauge",
        "Monitors retained for recently ended sessions (bounded).",
        retired_sessions
    );
    per_fe_health!(
        "lmond_health_transitions_retained",
        "gauge",
        "Health transitions currently held in memory.",
        transitions_retained
    );
    per_fe_health!(
        "lmond_health_transitions_recorded_total",
        "counter",
        "Lifetime health transitions recorded.",
        transitions_recorded
    );
    per_fe_health!(
        "lmond_health_transitions_dropped_total",
        "counter",
        "Health transitions evicted by the memory bounds.",
        transitions_dropped
    );
    r.family(
        "lmond_health_sessions",
        "gauge",
        "Sessions by current health state, across the pool.",
    );
    for (state, count) in &snap.health_states {
        let label = match state {
            HealthState::Healthy => "healthy",
            HealthState::Degraded => "degraded",
            HealthState::Healed => "healed",
            HealthState::Draining => "draining",
            HealthState::Upgraded => "upgraded",
        };
        r.sample("lmond_health_sessions", &[("state", label.to_string())], count);
    }

    r.out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> MetricsSnapshot {
        MetricsSnapshot {
            uptime: Duration::from_secs(90),
            fed_groups: 4,
            fed_epoch: 2,
            fed_failovers: 2,
            sessions_active: 3,
            launches_total: 12,
            launch_failures_total: 1,
            admission: AdmissionStats {
                in_flight: 3,
                waiting: 2,
                peak_in_flight: 8,
                peak_waiting: 10,
                admitted_total: 13,
                rejected_total: 4,
                released_total: 10,
            },
            transports: vec![TransportStats {
                be_physical_links: 1,
                be_sessions: 3,
                be_peak_sessions: 8,
                mw_physical_links: 1,
                mw_sessions: 0,
                mw_peak_sessions: 1,
                engine_physical_links: 1,
                engine_sessions: 1,
            }],
            healths: vec![HealthSummary {
                live_sessions: 1,
                retired_sessions: 2,
                degraded_sessions: 1,
                healed_sessions: 1,
                draining_sessions: 0,
                upgraded_sessions: 1,
                transitions_retained: 5,
                transitions_recorded: 40,
                transitions_dropped: 35,
            }],
            overlay: OverlayStatsSnapshot {
                spares_registered: 4,
                spares_activated: 1,
                ..OverlayStatsSnapshot::default()
            },
            health_states: vec![
                (HealthState::Healthy, 2),
                (HealthState::Degraded, 1),
                (HealthState::Healed, 0),
                (HealthState::Draining, 0),
                (HealthState::Upgraded, 1),
            ],
            suspicion_levels: vec![(0, "1:0".into(), 0), (0, "1:3".into(), 2)],
        }
    }

    #[test]
    fn renders_all_three_catalogs() {
        let text = render_prometheus(&snapshot());
        // One representative series per exported surface.
        assert!(text.contains("lmond_transport_be_sessions{fe=\"0\"} 3"), "{text}");
        assert!(text.contains("lmond_overlay_repairs_completed_total 0"), "{text}");
        assert!(text.contains("lmond_health_transitions_recorded_total{fe=\"0\"} 40"), "{text}");
        assert!(text.contains("lmond_health_sessions{state=\"degraded\"} 1"), "{text}");
        assert!(text.contains("lmond_admission_queue_depth 2"), "{text}");
        assert!(text.contains("lmond_uptime_seconds 90"), "{text}");
        // DESIGN.md §13 federation gauges.
        assert!(text.contains("lmond_fed_groups 4"), "{text}");
        assert!(text.contains("lmond_fed_epoch 2"), "{text}");
        assert!(text.contains("lmond_fed_failovers_total 2"), "{text}");
        // DESIGN.md §12 planned-maintenance families.
        assert!(text.contains("lmond_overlay_spares_registered_total 4"), "{text}");
        assert!(text.contains("lmond_overlay_spares_idle 3"), "{text}");
        assert!(text.contains("lmond_overlay_upgrades_completed_total 0"), "{text}");
        assert!(text.contains("lmond_health_sessions{state=\"upgraded\"} 1"), "{text}");
        assert!(
            text.contains("lmond_overlay_suspicion_level{overlay=\"0\",child=\"1:3\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn exposition_format_is_well_formed() {
        let text = render_prometheus(&snapshot());
        let mut families = 0;
        for line in text.lines() {
            if line.starts_with("# HELP") || line.starts_with("# TYPE") {
                if line.starts_with("# TYPE") {
                    families += 1;
                    let kind = line.split_whitespace().last().unwrap();
                    assert!(kind == "gauge" || kind == "counter", "bad type: {line}");
                }
                continue;
            }
            // `name{labels} value` or `name value`; the value parses as f64.
            let (head, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("bad: {line}"));
            assert!(value.parse::<f64>().is_ok(), "non-numeric value: {line}");
            let name = head.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name: {line}"
            );
            assert!(name.starts_with("lmond_"), "unnamespaced metric: {line}");
        }
        assert!(families > 25, "expected a full catalog, got {families} families");
    }
}
