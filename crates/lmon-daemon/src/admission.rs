//! Bounded admission: how a launch storm degrades to queueing.
//!
//! The paper's §2 failure mode is resource exhaustion under fan-out — the
//! ad hoc bootstrapper dies at ≈504 rsh sessions because every concurrent
//! session costs file descriptors. A persistent daemon faces the same cliff
//! one layer up: thousands of clients can ask for launches at once, and
//! every *in-flight* session costs node allocations, engine work, and mux
//! sub-streams. The admission queue turns that cliff into a slope:
//!
//! * at most `limit` sessions are in flight at any instant;
//! * up to `queue_capacity` further requests *wait* (the client blocks on
//!   its control connection — natural backpressure, no buffering);
//! * beyond that, requests are rejected immediately with a retryable
//!   "busy" error instead of degrading everyone.
//!
//! A [`Permit`] is the unit of admission: held for the whole session
//! lifetime (launch → detach/kill) and released on drop, so early-error
//! paths can never leak a slot.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

/// Why a launch request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionError {
    /// The wait queue is at capacity; the caller should retry later.
    QueueFull {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The daemon is shutting down; queued waiters are drained with this.
    Closed,
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::QueueFull { capacity } => {
                write!(f, "admission queue full ({capacity} waiting); retry later")
            }
            AdmissionError::Closed => write!(f, "admission closed (daemon shutting down)"),
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Point-in-time admission counters (exported via `/metrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Sessions currently holding a permit.
    pub in_flight: usize,
    /// Requests currently blocked in the wait queue.
    pub waiting: usize,
    /// High-water mark of `in_flight` — the storm test's bound assertion.
    pub peak_in_flight: usize,
    /// High-water mark of `waiting`.
    pub peak_waiting: usize,
    /// Lifetime admitted requests.
    pub admitted_total: u64,
    /// Lifetime rejected requests (queue full or closed).
    pub rejected_total: u64,
    /// Lifetime permits released.
    pub released_total: u64,
}

#[derive(Default)]
struct AdmState {
    in_flight: usize,
    waiting: usize,
    peak_in_flight: usize,
    peak_waiting: usize,
    admitted_total: u64,
    rejected_total: u64,
    released_total: u64,
    /// Next ticket to hand to a queued waiter (FIFO tail).
    ticket_tail: u64,
    /// Ticket currently allowed to take a freed permit (FIFO head).
    ticket_head: u64,
}

/// Counting-semaphore admission with a bounded wait queue.
pub struct AdmissionQueue {
    state: Mutex<AdmState>,
    cv: Condvar,
    limit: usize,
    queue_capacity: usize,
    closed: AtomicBool,
}

impl AdmissionQueue {
    /// At most `limit` concurrent permits; at most `queue_capacity` blocked
    /// waiters beyond that (both clamped to ≥ 1 and ≥ 0 respectively).
    pub fn new(limit: usize, queue_capacity: usize) -> Arc<Self> {
        Arc::new(AdmissionQueue {
            state: Mutex::new(AdmState::default()),
            cv: Condvar::new(),
            limit: limit.max(1),
            queue_capacity,
            closed: AtomicBool::new(false),
        })
    }

    /// The concurrent-session bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Block until a permit is available (queueing with backpressure), or
    /// fail fast when the wait queue itself is full.
    ///
    /// Handoff is FIFO: waiters draw tickets, and a freed permit goes to
    /// the lowest outstanding ticket. A fresh arrival that finds *any*
    /// parked waiter queues behind it instead of taking the slot — without
    /// this, sustained fresh traffic barges past the queue and starves
    /// parked `LAUNCH` requests indefinitely.
    pub fn admit(self: &Arc<Self>) -> Result<Permit, AdmissionError> {
        let mut st = self.state.lock();
        if self.closed.load(Ordering::SeqCst) {
            st.rejected_total += 1;
            return Err(AdmissionError::Closed);
        }
        if st.in_flight >= self.limit || st.waiting > 0 {
            if st.waiting >= self.queue_capacity {
                st.rejected_total += 1;
                return Err(AdmissionError::QueueFull { capacity: self.queue_capacity });
            }
            let ticket = st.ticket_tail;
            st.ticket_tail += 1;
            st.waiting += 1;
            st.peak_waiting = st.peak_waiting.max(st.waiting);
            while (st.in_flight >= self.limit || st.ticket_head != ticket)
                && !self.closed.load(Ordering::SeqCst)
            {
                self.cv.wait(&mut st);
            }
            st.waiting -= 1;
            if self.closed.load(Ordering::SeqCst) {
                st.rejected_total += 1;
                return Err(AdmissionError::Closed);
            }
            // This ticket is served; unblock the next in line (it may be
            // eligible right away when several permits freed at once).
            st.ticket_head += 1;
            self.cv.notify_all();
        }
        st.in_flight += 1;
        st.peak_in_flight = st.peak_in_flight.max(st.in_flight);
        st.admitted_total += 1;
        Ok(Permit { queue: Arc::clone(self) })
    }

    /// Wake and reject every queued waiter; subsequent `admit`s fail fast.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
        let _guard = self.state.lock();
        self.cv.notify_all();
    }

    /// Current counters.
    pub fn stats(&self) -> AdmissionStats {
        let st = self.state.lock();
        AdmissionStats {
            in_flight: st.in_flight,
            waiting: st.waiting,
            peak_in_flight: st.peak_in_flight,
            peak_waiting: st.peak_waiting,
            admitted_total: st.admitted_total,
            rejected_total: st.rejected_total,
            released_total: st.released_total,
        }
    }
}

/// An admitted session's slot; releasing (dropping) it hands the freed
/// permit to the longest-parked waiter.
pub struct Permit {
    queue: Arc<AdmissionQueue>,
}

impl std::fmt::Debug for Permit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Permit").finish_non_exhaustive()
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        let mut st = self.queue.state.lock();
        st.in_flight -= 1;
        st.released_total += 1;
        // notify_all, not notify_one: under ticket handoff only the head
        // ticket may proceed, and a single wakeup landing on a non-head
        // waiter would be swallowed (it re-checks and sleeps again).
        self.queue.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn admits_up_to_limit_without_blocking() {
        let q = AdmissionQueue::new(3, 0);
        let p1 = q.admit().unwrap();
        let _p2 = q.admit().unwrap();
        let _p3 = q.admit().unwrap();
        assert_eq!(q.stats().in_flight, 3);
        // Queue capacity 0: the fourth is rejected, not queued.
        assert_eq!(q.admit().unwrap_err(), AdmissionError::QueueFull { capacity: 0 });
        drop(p1);
        assert_eq!(q.stats().in_flight, 2);
        let _p4 = q.admit().unwrap();
        let s = q.stats();
        assert_eq!((s.admitted_total, s.rejected_total, s.released_total), (4, 1, 1));
        assert_eq!(s.peak_in_flight, 3);
    }

    #[test]
    fn queued_request_blocks_until_release_and_drain_is_monotonic() {
        let q = AdmissionQueue::new(1, 16);
        let first = q.admit().unwrap();
        let order = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let q2 = Arc::clone(&q);
            let order2 = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                let p = q2.admit().unwrap();
                let seq = order2.fetch_add(1, Ordering::SeqCst);
                drop(p);
                seq
            }));
        }
        // Wait until all four are parked in the queue.
        while q.stats().waiting < 4 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut depths = vec![q.stats().waiting];
        drop(first);
        // With only releases happening, the queue depth must drain
        // monotonically to zero — no waiter is ever re-queued.
        while q.stats().waiting > 0 || q.stats().in_flight > 0 {
            depths.push(q.stats().waiting);
            std::thread::sleep(Duration::from_millis(1));
        }
        depths.push(0);
        assert!(depths.windows(2).all(|w| w[1] <= w[0]), "non-monotonic drain: {depths:?}");
        for h in handles {
            h.join().unwrap();
        }
        let s = q.stats();
        assert_eq!(s.in_flight, 0);
        assert_eq!(s.admitted_total, 5);
        assert_eq!(s.peak_in_flight, 1, "limit 1 was never exceeded");
    }

    /// Review regression: a freed permit must go to the parked waiter, not
    /// to a fresh arrival that races the wakeup. Before the FIFO-ticket
    /// fix, the fresh admit below would observe `in_flight < limit` first
    /// and barge past the waiter — sustained fresh traffic could starve
    /// queued requests indefinitely.
    #[test]
    fn parked_waiter_is_served_before_fresh_arrival() {
        let q = AdmissionQueue::new(1, 16);
        let held = q.admit().unwrap();

        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let waiter = {
            let q = Arc::clone(&q);
            let order = Arc::clone(&order);
            std::thread::spawn(move || {
                let p = q.admit().unwrap();
                order.lock().push("waiter");
                std::thread::sleep(Duration::from_millis(20)); // hold the slot a beat
                drop(p);
            })
        };
        while q.stats().waiting < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }

        // Free the permit and immediately contend as a fresh arrival.
        drop(held);
        let p = q.admit().unwrap();
        order.lock().push("fresh");
        drop(p);

        waiter.join().unwrap();
        assert_eq!(*order.lock(), ["waiter", "fresh"], "no barging past the queue");
        let s = q.stats();
        assert_eq!((s.in_flight, s.waiting), (0, 0));
        assert_eq!(s.peak_in_flight, 1, "limit 1 was never exceeded");
    }

    #[test]
    fn close_drains_waiters_with_errors() {
        let q = AdmissionQueue::new(1, 8);
        let held = q.admit().unwrap();
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.admit());
        while q.stats().waiting < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        q.close();
        assert_eq!(h.join().unwrap().unwrap_err(), AdmissionError::Closed);
        assert_eq!(q.admit().unwrap_err(), AdmissionError::Closed);
        drop(held);
    }
}
