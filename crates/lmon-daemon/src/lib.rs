//! `lmon-daemon` — the persistent, multi-tenant launch service (`lmond`).
//!
//! The paper's LaunchMON is session-oriented: a tool process links the FE
//! API, launches, detaches, exits. That leaves two gaps this crate closes
//! (ROADMAP item 1):
//!
//! * **Amortized startup.** A long-lived service owns a pool of
//!   [`lmon_core::LmonFrontEnd`]s (engine up, virtual cluster warm) so a
//!   launch request pays none of the per-tool bring-up cost.
//! * **Multi-tenancy with admission control.** Many clients share the pool
//!   over a line-delimited control protocol ([`control`]) on a Unix socket
//!   and/or TCP listener. A launch storm degrades to *queueing* — bounded
//!   by [`admission::AdmissionQueue`] — rather than fd/allocation
//!   exhaustion, which is exactly the §2 failure mode (the ≈504-session
//!   rsh cliff) moved up one layer and handled on purpose.
//!
//! The daemon is *lazy-started*: the first client that finds no daemon
//! becomes it, with the socket bind as the race-deciding mutex
//! ([`client::connect_or_start`]). Observability is a text `/metrics`
//! endpoint in Prometheus exposition format ([`metrics`]), exporting
//! transport, overlay-recovery, admission, and health-ledger counters.
//!
//! Layering: tier 3 (tools layer). Depends on the core FE/engine, the RM
//! shims, and the TBON overlay; nothing in tiers 1–2 knows about it.

#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod control;
pub mod daemon;
pub mod error;
pub mod metrics;
pub mod responses;

pub use admission::{AdmissionError, AdmissionQueue, AdmissionStats, Permit};
#[cfg(unix)]
pub use client::connect_or_start;
pub use client::{DaemonClient, LazyStartOutcome};
pub use control::{negotiate, ParseError, ParsedReply, Reply, Request, PROTOCOL_VERSION};
#[cfg(unix)]
pub use daemon::bind_and_start;
pub use daemon::{start_daemon, Daemon, DaemonConfig, DaemonHandle, FailoverReport, FeShard};
pub use error::{DaemonError, DaemonResult};
pub use metrics::{render_prometheus, MetricsSnapshot};
pub use responses::{
    AttachResponse, LaunchResponse, RunJobResponse, SessionStatusResponse, StatusResponse,
    UpgradeResponse,
};
