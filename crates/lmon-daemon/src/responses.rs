//! Typed per-verb views over the control protocol's field-bag replies.
//!
//! The wire format stays line-delimited `key=value` pairs (see
//! [`crate::control`]), but CLI and test callers should not be scraping
//! `field_as::<u64>("gsid")` out of a [`ParsedReply`] by hand. Each verb
//! with a structured answer gets a response struct here with a
//! `from_reply` constructor that pulls the required fields out once,
//! converting a missing or malformed field into a
//! [`DaemonError::Protocol`]. Every struct keeps the underlying
//! [`ParsedReply`] (via [`raw`](LaunchResponse::raw)-style accessors), so
//! raw scrapes — dumping every field, forward-compat probing — still work.

use crate::control::ParsedReply;
use crate::error::{DaemonError, DaemonResult};

fn required<T: std::str::FromStr>(reply: &ParsedReply, key: &str) -> DaemonResult<T> {
    reply
        .field_as::<T>(key)
        .ok_or_else(|| DaemonError::Protocol(format!("reply missing field {key:?}")))
}

fn required_str(reply: &ParsedReply, key: &str) -> DaemonResult<String> {
    reply
        .field(key)
        .map(str::to_string)
        .ok_or_else(|| DaemonError::Protocol(format!("reply missing field {key:?}")))
}

/// `LAUNCH` reply: the global session id plus placement and timing.
#[derive(Debug, Clone)]
pub struct LaunchResponse {
    /// Daemon-global session id (the handle for `STATUS`/`DETACH`/`KILL`).
    pub gsid: u64,
    /// Index of the pooled front end the session landed on.
    pub fe: usize,
    /// Federation group the session is pinned to (`0` on a 1-group pool).
    pub group: usize,
    /// Tool daemons spawned for the session.
    pub daemons: usize,
    /// Milliseconds spent waiting in the admission queue.
    pub wait_ms: u64,
    /// Milliseconds spent in the launch proper.
    pub launch_ms: u64,
    raw: ParsedReply,
}

impl LaunchResponse {
    /// Parse a `LAUNCH` reply, erroring on missing/malformed fields.
    pub fn from_reply(raw: ParsedReply) -> DaemonResult<Self> {
        Ok(LaunchResponse {
            gsid: required(&raw, "gsid")?,
            fe: required(&raw, "fe")?,
            group: raw.field_as::<usize>("group").unwrap_or(0),
            daemons: required(&raw, "daemons")?,
            wait_ms: required(&raw, "wait_ms")?,
            launch_ms: required(&raw, "launch_ms")?,
            raw,
        })
    }

    /// The untyped reply, for raw scrapes.
    pub fn raw(&self) -> &ParsedReply {
        &self.raw
    }
}

/// `RUNJOB` reply: the plain job an `ATTACH` can later target.
#[derive(Debug, Clone)]
pub struct RunJobResponse {
    /// Launcher pid of the started job.
    pub pid: u64,
    /// Resource-manager job id.
    pub job: u64,
    /// Index of the pooled front end whose RM owns the job.
    pub fe: usize,
    /// Nodes allocated to the job.
    pub nodes: usize,
    raw: ParsedReply,
}

impl RunJobResponse {
    /// Parse a `RUNJOB` reply, erroring on missing/malformed fields.
    pub fn from_reply(raw: ParsedReply) -> DaemonResult<Self> {
        Ok(RunJobResponse {
            pid: required(&raw, "pid")?,
            job: required(&raw, "job")?,
            fe: required(&raw, "fe")?,
            nodes: required(&raw, "nodes")?,
            raw,
        })
    }

    /// The untyped reply, for raw scrapes.
    pub fn raw(&self) -> &ParsedReply {
        &self.raw
    }
}

/// `ATTACH` reply: one session per target launcher pid.
#[derive(Debug, Clone)]
pub struct AttachResponse {
    /// Global session ids, in the order the pids were given.
    pub gsids: Vec<u64>,
    /// Total tool daemons spawned across the new sessions.
    pub daemons: usize,
    raw: ParsedReply,
}

impl AttachResponse {
    /// Parse an `ATTACH` reply, erroring on missing/malformed fields.
    pub fn from_reply(raw: ParsedReply) -> DaemonResult<Self> {
        let csv = required_str(&raw, "gsids")?;
        let mut gsids = Vec::new();
        for tok in csv.split(',').filter(|t| !t.is_empty()) {
            let gsid = tok
                .parse::<u64>()
                .map_err(|_| DaemonError::Protocol(format!("bad gsid {tok:?} in reply")))?;
            gsids.push(gsid);
        }
        Ok(AttachResponse { gsids, daemons: required(&raw, "daemons")?, raw })
    }

    /// The untyped reply, for raw scrapes.
    pub fn raw(&self) -> &ParsedReply {
        &self.raw
    }
}

/// `UPGRADE` reply: the rolling-upgrade drill's report card.
#[derive(Debug, Clone)]
pub struct UpgradeResponse {
    /// Overlay shape the drill ran (`"1x4x16+4"` style).
    pub shape: String,
    /// Interior comm daemons replaced.
    pub nodes_upgraded: usize,
    /// Replacements satisfied from the hot-spare pool.
    pub spares_used: usize,
    /// Unplanned repairs observed mid-drill (0 on a clean run).
    pub unplanned_repairs: u64,
    /// Route epoch after the final replacement.
    pub epoch: u64,
    /// Median per-node drain time, microseconds.
    pub drain_p50_us: u64,
    /// Tail per-node drain time, microseconds.
    pub drain_p99_us: u64,
    raw: ParsedReply,
}

impl UpgradeResponse {
    /// Parse an `UPGRADE` reply, erroring on missing/malformed fields.
    pub fn from_reply(raw: ParsedReply) -> DaemonResult<Self> {
        Ok(UpgradeResponse {
            shape: required_str(&raw, "shape")?,
            nodes_upgraded: required(&raw, "nodes_upgraded")?,
            spares_used: required(&raw, "spares_used")?,
            unplanned_repairs: required(&raw, "unplanned_repairs")?,
            epoch: required(&raw, "epoch")?,
            drain_p50_us: required(&raw, "drain_p50_us")?,
            drain_p99_us: required(&raw, "drain_p99_us")?,
            raw,
        })
    }

    /// The untyped reply, for raw scrapes.
    pub fn raw(&self) -> &ParsedReply {
        &self.raw
    }
}

/// `STATUS` reply: daemon-wide gauges and counters.
#[derive(Debug, Clone)]
pub struct StatusResponse {
    /// Seconds since the daemon started.
    pub uptime_s: u64,
    /// Pooled front ends.
    pub backends: usize,
    /// Federation groups the pool is sharded into.
    pub groups: usize,
    /// Live sessions.
    pub sessions: usize,
    /// Sessions currently inside the admission limit.
    pub in_flight: usize,
    /// Launch requests waiting in the admission queue.
    pub queue_depth: usize,
    /// Successful launches since start.
    pub launches: u64,
    /// Failed launches since start.
    pub failures: u64,
    /// Inter-group federation epoch (bumps on every group failover).
    pub fed_epoch: u64,
    /// Whole-group FE failovers since start.
    pub fed_failovers: u64,
    raw: ParsedReply,
}

impl StatusResponse {
    /// Parse a `STATUS` reply, erroring on missing/malformed fields.
    pub fn from_reply(raw: ParsedReply) -> DaemonResult<Self> {
        Ok(StatusResponse {
            uptime_s: required(&raw, "uptime_s")?,
            backends: required(&raw, "backends")?,
            groups: raw.field_as::<usize>("groups").unwrap_or(1),
            sessions: required(&raw, "sessions")?,
            in_flight: required(&raw, "in_flight")?,
            queue_depth: required(&raw, "queue_depth")?,
            launches: required(&raw, "launches")?,
            failures: required(&raw, "failures")?,
            fed_epoch: raw.field_as::<u64>("fed_epoch").unwrap_or(0),
            fed_failovers: raw.field_as::<u64>("fed_failovers").unwrap_or(0),
            raw,
        })
    }

    /// The untyped reply, for raw scrapes (peak_in_flight, limits, …).
    pub fn raw(&self) -> &ParsedReply {
        &self.raw
    }
}

/// `STATUS <gsid>` reply: one session's state.
#[derive(Debug, Clone)]
pub struct SessionStatusResponse {
    /// Global session id.
    pub gsid: u64,
    /// Front end currently hosting the session.
    pub fe: usize,
    /// Federation group currently hosting the session.
    pub group: usize,
    /// Application name (or `attach:pid=N`).
    pub app: String,
    /// Tool daemons in the session.
    pub daemons: usize,
    /// Engine session state, `Debug`-formatted.
    pub state: String,
    /// Health monitor verdict, `Debug`-formatted.
    pub health: String,
    /// Seconds since the session launched.
    pub age_s: u64,
    raw: ParsedReply,
}

impl SessionStatusResponse {
    /// Parse a `STATUS <gsid>` reply, erroring on missing/malformed fields.
    pub fn from_reply(raw: ParsedReply) -> DaemonResult<Self> {
        Ok(SessionStatusResponse {
            gsid: required(&raw, "gsid")?,
            fe: required(&raw, "fe")?,
            group: raw.field_as::<usize>("group").unwrap_or(0),
            app: required_str(&raw, "app")?,
            daemons: required(&raw, "daemons")?,
            state: required_str(&raw, "state")?,
            health: required_str(&raw, "health")?,
            age_s: required(&raw, "age_s")?,
            raw,
        })
    }

    /// The untyped reply, for raw scrapes.
    pub fn raw(&self) -> &ParsedReply {
        &self.raw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::control::parse_reply_header;

    fn reply(line: &str) -> ParsedReply {
        parse_reply_header(line).expect("header parses").0
    }

    #[test]
    fn launch_response_extracts_typed_fields() {
        let raw = reply("OK gsid=7 fe=1 group=2 daemons=8 wait_ms=3 launch_ms=41");
        let r = LaunchResponse::from_reply(raw).unwrap();
        assert_eq!((r.gsid, r.fe, r.group, r.daemons), (7, 1, 2, 8));
        assert_eq!((r.wait_ms, r.launch_ms), (3, 41));
        assert_eq!(r.raw().field("gsid"), Some("7"));
    }

    #[test]
    fn missing_fields_become_protocol_errors() {
        let raw = reply("OK fe=1 daemons=8 wait_ms=3 launch_ms=41");
        let err = LaunchResponse::from_reply(raw).unwrap_err();
        assert!(err.to_string().contains("gsid"), "names the missing field: {err}");
    }

    #[test]
    fn v1_replies_without_group_fields_still_parse() {
        // A v1 daemon never sends group/fed_* fields; typed views default
        // them instead of failing, so a v2 CLI works against a v1 server.
        let raw = reply("OK gsid=7 fe=0 daemons=4 wait_ms=0 launch_ms=9");
        assert_eq!(LaunchResponse::from_reply(raw).unwrap().group, 0);
        let raw = reply(
            "OK uptime_s=5 backends=2 sessions=1 in_flight=1 queue_depth=0 \
             peak_in_flight=1 admitted=1 rejected=0 launches=1 failures=0 \
             upgrades=0 limit=8 queue_capacity=16",
        );
        let st = StatusResponse::from_reply(raw).unwrap();
        assert_eq!((st.groups, st.fed_epoch, st.fed_failovers), (1, 0, 0));
    }

    #[test]
    fn attach_response_parses_gsid_csv() {
        let raw = reply("OK gsids=3,4,5 sessions=3 daemons=12");
        let r = AttachResponse::from_reply(raw).unwrap();
        assert_eq!(r.gsids, vec![3, 4, 5]);
        assert_eq!(r.daemons, 12);
        let raw = reply("OK gsids=3,x sessions=2 daemons=8");
        assert!(AttachResponse::from_reply(raw).is_err());
    }
}
