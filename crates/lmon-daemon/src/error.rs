//! Error type shared by the daemon core and the client.

use lmon_core::LmonError;

use crate::admission::AdmissionError;

/// Anything that can go wrong starting, serving, or talking to `lmond`.
#[derive(Debug)]
pub enum DaemonError {
    /// A socket / filesystem operation failed.
    Io(std::io::Error),
    /// The launch machinery behind the daemon failed.
    Core(LmonError),
    /// Admission was refused (queue full or daemon shutting down).
    Admission(AdmissionError),
    /// The peer spoke something that is not the control protocol.
    Protocol(String),
    /// The daemon answered with an `ERR` reply.
    Remote(String),
    /// Lazy start could not converge on a serving daemon.
    LazyStart(String),
}

/// Convenience alias used throughout the crate.
pub type DaemonResult<T> = Result<T, DaemonError>;

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "io: {e}"),
            DaemonError::Core(e) => write!(f, "launch core: {e}"),
            DaemonError::Admission(e) => write!(f, "admission: {e}"),
            DaemonError::Protocol(m) => write!(f, "protocol: {m}"),
            DaemonError::Remote(m) => write!(f, "daemon error: {m}"),
            DaemonError::LazyStart(m) => write!(f, "lazy start: {m}"),
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Io(e) => Some(e),
            DaemonError::Core(e) => Some(e),
            DaemonError::Admission(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e)
    }
}

impl From<LmonError> for DaemonError {
    fn from(e: LmonError) -> Self {
        DaemonError::Core(e)
    }
}

impl From<AdmissionError> for DaemonError {
    fn from(e: AdmissionError) -> Self {
        DaemonError::Admission(e)
    }
}
