//! `launch_latency` — time-to-ready through the parallel, pipelined
//! bring-up path (ISSUE 8 tentpole measurement).
//!
//! Drives real `launchAndSpawn` calls on the virtual cluster at the paper's
//! small-cluster profile (1 session x 16 nodes x 256 tasks) and reports the
//! per-phase critical-path breakdown as p50/p99 over many launches:
//!
//! * **engine** (e1→e4): launcher trace + RPDTAB fetch
//! * **spawn** (e5→e6): per-node daemon fan-out — the phase the worker
//!   pool parallelizes
//! * **handshake** (e7→e10): the serialized remainder of hello/collective
//!   setup that the pipelined FE could not overlap with the spawn window
//! * **total** (e0→e11): what the client experienced
//!
//! The *baseline arm is measured in the same run*: the identical workload
//! through `SlurmRm::with_launch_workers(1)`, i.e. the sequential spawn
//! loop every launcher used before the worker-pool fan-out. Both arms
//! inject the same calibrated per-spawn cost (`ClusterConfig::spawn_latency`)
//! so the serial-vs-parallel gap at 16 nodes has the shape of a real
//! machine's fork/exec cost rather than a thread-creation microbenchmark.
//!
//! A storm mode drives many concurrent sessions through one front end and
//! reports sessions/s plus the per-session time-to-ready tail (p50/p99) —
//! concurrent clients already overlap each other's spawn waits, so the
//! interesting storm numbers are throughput and tail, not another A/B.
//!
//! Results go to stdout and `BENCH_launch.json` at the workspace root.
//! Quick mode for CI: `LMON_BENCH_QUICK=1`.
//!
//! **Gates** (skippable with `LMON_BENCH_SKIP_GATE=1`):
//! 1. acceptance — parallel time-to-ready must be ≥2x the sequential
//!    baseline's at the 1x16x256 profile (the ISSUE 8 criterion);
//! 2. regression — p50 total must not land more than 30% above the
//!    committed artifact's *and* lose more than 30% of its committed
//!    speedup ratio (the ratio is hardware-neutral, so a uniformly slower
//!    runner passes while a real pipeline regression fails).

use std::io::Write as _;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use lmon_bench::{extract_json_number as extract_number, print_table, Row};
use lmon_cluster::config::ClusterConfig;
use lmon_cluster::{VirtualCluster, DEFAULT_LAUNCH_WORKERS};
use lmon_core::be::BeMain;
use lmon_core::fe::LmonFrontEnd;
use lmon_core::timeline::CriticalEvent;
use lmon_proto::payload::DaemonSpec;
use lmon_rm::api::ResourceManager;
use lmon_rm::SlurmRm;

/// The 1x16x256 profile: 16 nodes, 16 tasks per node.
const NODES: usize = 16;
const TASKS_PER_NODE: usize = 16;

/// Calibrated per-daemon spawn cost (fork/exec + image load stand-in —
/// starting a tool daemon on a real node is milliseconds of wall clock
/// that the spawning side spends *waiting*, which is exactly what the
/// worker pool overlaps).
const SPAWN_LATENCY: Duration = Duration::from_millis(2);

/// Storm-mode shape: concurrent sessions on one front end, each smaller
/// than the single-session profile so the storm finishes in seconds.
const STORM_NODES: usize = 8;
const STORM_TASKS_PER_NODE: usize = 4;

/// ISSUE 8 acceptance floor: parallel vs sequential time-to-ready.
const ACCEPT_SPEEDUP: f64 = 2.0;

/// Regression gate: fail when p50 total lands >30% above the committed one
/// while the speedup ratio also lost >30%.
const GATE_FLOOR: f64 = 0.70;

fn quick_mode() -> bool {
    std::env::var("LMON_BENCH_QUICK").map(|v| v == "1").unwrap_or(false)
}

/// p50/p99 of a sample set, in milliseconds.
#[derive(Debug, Clone, Copy)]
struct Pcts {
    p50: f64,
    p99: f64,
}

fn pcts(mut samples: Vec<f64>) -> Pcts {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = samples.len();
    Pcts { p50: samples[n / 2], p99: samples[(n * 99).div_ceil(100).min(n - 1)] }
}

/// One arm's per-phase samples across repeated launches.
#[derive(Debug, Default)]
struct PhaseSamples {
    engine: Vec<f64>,
    spawn: Vec<f64>,
    handshake: Vec<f64>,
    total: Vec<f64>,
}

#[derive(Debug, Clone, Copy)]
struct PhasePcts {
    engine: Pcts,
    spawn: Pcts,
    handshake: Pcts,
    total: Pcts,
}

impl PhaseSamples {
    fn pcts(self) -> PhasePcts {
        PhasePcts {
            engine: pcts(self.engine),
            spawn: pcts(self.spawn),
            handshake: pcts(self.handshake),
            total: pcts(self.total),
        }
    }
}

fn idle_daemon() -> BeMain {
    Arc::new(|be| {
        // The bench kills sessions to release their node allocations, so
        // the shutdown wait may observe a disconnect instead of the
        // broadcast; both mean "done" here.
        let _ = be.wait_shutdown();
    })
}

/// A front end over a cluster with the calibrated spawn cost, using
/// `workers` threads for the daemon fan-out (1 = the sequential baseline).
fn front_end(nodes: usize, workers: usize) -> LmonFrontEnd {
    let mut cfg = ClusterConfig::with_nodes(nodes);
    cfg.spawn_latency = SPAWN_LATENCY;
    let cluster = VirtualCluster::new(cfg);
    let rm: Arc<dyn ResourceManager> = Arc::new(SlurmRm::new(cluster).with_launch_workers(workers));
    LmonFrontEnd::init(rm).expect("front end init")
}

/// One full bring-up on `fe`; returns (engine, spawn, handshake, total) ms.
fn one_launch(fe: &LmonFrontEnd, nodes: usize, tpn: usize) -> (f64, f64, f64, f64) {
    let session = fe.create_session();
    let outcome = fe
        .launch_and_spawn(
            session,
            "bench_app",
            &[],
            nodes,
            tpn,
            DaemonSpec::bare("tool_daemon"),
            idle_daemon(),
        )
        .expect("launchAndSpawn");
    let tl = fe.timeline(session).expect("timeline");
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    let span = |from, to| ms(tl.between(from, to).expect("ordered critical path"));
    let engine = span(CriticalEvent::E1EngineInvoked, CriticalEvent::E4RpdtabFetched);
    let spawn = span(CriticalEvent::E5DaemonSpawnStart, CriticalEvent::E6DaemonsSpawned);
    let handshake = span(CriticalEvent::E7HandshakeStart, CriticalEvent::E10Ready);
    let total = ms(outcome.breakdown.expect("complete breakdown").total);
    // Kill rather than detach: kill releases the node allocation, so the
    // next sample (or the next storm wave) can re-allocate the cluster.
    fe.kill(session).expect("kill");
    (engine, spawn, handshake, total)
}

/// The single-session arm: `samples` repeated launches on one front end.
fn single_session_arm(workers: usize, samples: usize) -> PhasePcts {
    let fe = front_end(NODES, workers);
    let mut out = PhaseSamples::default();
    for _ in 0..samples {
        let (engine, spawn, handshake, total) = one_launch(&fe, NODES, TASKS_PER_NODE);
        out.engine.push(engine);
        out.spawn.push(spawn);
        out.handshake.push(handshake);
        out.total.push(total);
    }
    fe.shutdown().expect("shutdown");
    out.pcts()
}

/// The storm arm: `sessions` concurrent bring-ups on one front end.
/// Returns sessions/s over the whole storm plus per-session time-to-ready
/// percentiles — the tail is what admission-queued tools actually feel.
fn storm_arm(workers: usize, sessions: usize) -> (f64, Pcts) {
    // Enough nodes for every storm session to hold its allocation at once.
    let fe = Arc::new(front_end(STORM_NODES * sessions, workers));
    let start_line = Arc::new(Barrier::new(sessions + 1));
    let clients: Vec<_> = (0..sessions)
        .map(|_| {
            let fe = Arc::clone(&fe);
            let start_line = Arc::clone(&start_line);
            std::thread::spawn(move || {
                start_line.wait();
                let (.., total) = one_launch(&fe, STORM_NODES, STORM_TASKS_PER_NODE);
                total
            })
        })
        .collect();
    start_line.wait();
    let t0 = Instant::now();
    let totals: Vec<f64> = clients.into_iter().map(|c| c.join().expect("storm client")).collect();
    let secs = t0.elapsed().as_secs_f64();
    if let Ok(fe) = Arc::try_unwrap(fe) {
        fe.shutdown().expect("shutdown");
    }
    (sessions as f64 / secs, pcts(totals))
}

fn phase_rows(parallel: &PhasePcts, sequential: &PhasePcts) -> Vec<Row> {
    let fmt = |p: Pcts| (format!("{:.2}ms", p.p50), format!("{:.2}ms", p.p99));
    [
        ("engine (e1-e4)", parallel.engine, sequential.engine),
        ("spawn (e5-e6)", parallel.spawn, sequential.spawn),
        ("handshake (e7-e10)", parallel.handshake, sequential.handshake),
        ("total (e0-e11)", parallel.total, sequential.total),
    ]
    .into_iter()
    .map(|(name, p, s)| {
        let (pp50, pp99) = fmt(p);
        let (sp50, sp99) = fmt(s);
        Row { x: name.into(), values: vec![pp50, pp99, sp50, sp99] }
    })
    .collect()
}

fn phase_json(p: &PhasePcts) -> String {
    format!(
        concat!(
            "      \"engine\":    {{\"p50\": {e50:.3}, \"p99\": {e99:.3}}},\n",
            "      \"spawn\":     {{\"p50\": {s50:.3}, \"p99\": {s99:.3}}},\n",
            "      \"handshake\": {{\"p50\": {h50:.3}, \"p99\": {h99:.3}}},\n",
            "      \"total\":     {{\"p50\": {t50:.3}, \"p99\": {t99:.3}}}"
        ),
        e50 = p.engine.p50,
        e99 = p.engine.p99,
        s50 = p.spawn.p50,
        s99 = p.spawn.p99,
        h50 = p.handshake.p50,
        h99 = p.handshake.p99,
        t50 = p.total.p50,
        t99 = p.total.p99,
    )
}

fn main() {
    let quick = quick_mode();
    let samples = if quick { 7 } else { 20 };
    let storm_sessions = if quick { 8 } else { 16 };

    // The committed artifact is the regression reference; read it *before*
    // overwriting, and only arm the gate when it was produced in this
    // run's mode (quick- and full-mode sample counts differ).
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_launch.json");
    let committed = std::fs::read_to_string(&out).ok().and_then(|json| {
        let committed_quick = json.contains("\"quick\": true");
        if committed_quick != quick {
            return None;
        }
        let total = extract_number(&json, "\"parallel_total_p50_ms\":")?;
        let speedup = extract_number(&json, "\"speedup_total_p50\":")?;
        Some((total, speedup))
    });

    let parallel = single_session_arm(DEFAULT_LAUNCH_WORKERS, samples);
    let sequential = single_session_arm(1, samples);
    let speedup = sequential.total.p50 / parallel.total.p50;

    print_table(
        &format!(
            "time-to-ready, 1x{NODES}x{} ({samples} launches, {}us/spawn injected)",
            NODES * TASKS_PER_NODE,
            SPAWN_LATENCY.as_micros()
        ),
        "phase",
        &["par p50", "par p99", "seq p50", "seq p99"],
        &phase_rows(&parallel, &sequential),
    );
    println!(
        "time-to-ready speedup vs sequential fan-out: {speedup:.2}x p50 \
         (acceptance floor: {ACCEPT_SPEEDUP:.1}x)"
    );

    let (storm_rate, storm_totals) = storm_arm(DEFAULT_LAUNCH_WORKERS, storm_sessions);
    print_table(
        &format!(
            "launch storm, {storm_sessions} concurrent sessions x {STORM_NODES} nodes x {} tasks",
            STORM_NODES * STORM_TASKS_PER_NODE
        ),
        "metric",
        &["value"],
        &[
            Row { x: "sessions/s".into(), values: vec![format!("{storm_rate:.1}")] },
            Row {
                x: "time-to-ready p50".into(),
                values: vec![format!("{:.2}ms", storm_totals.p50)],
            },
            Row {
                x: "time-to-ready p99".into(),
                values: vec![format!("{:.2}ms", storm_totals.p99)],
            },
        ],
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"quick\": {quick},\n",
            "  \"profile\": {{\"sessions\": 1, \"nodes\": {nodes}, \"tasks_per_node\": {tpn}, ",
            "\"tasks\": {tasks}, \"spawn_latency_us\": {lat}, \"samples\": {samples}, ",
            "\"launch_workers\": {workers}}},\n",
            "  \"single_session_ms\": {{\n",
            "    \"parallel\": {{\n",
            "{par}\n",
            "    }},\n",
            "    \"sequential\": {{\n",
            "{seq}\n",
            "    }}\n",
            "  }},\n",
            "  \"parallel_total_p50_ms\": {pt:.3},\n",
            "  \"sequential_total_p50_ms\": {st:.3},\n",
            "  \"speedup_total_p50\": {sp:.3},\n",
            "  \"storm\": {{\"sessions\": {ss}, \"nodes\": {sn}, \"tasks_per_node\": {stpn}, ",
            "\"sessions_per_s\": {sps:.2}, \"total_p50_ms\": {sq50:.3}, ",
            "\"total_p99_ms\": {sq99:.3}}},\n",
            "  \"baseline\": {{\n",
            "    \"note\": \"sequential spawn fan-out (launch_workers=1) measured in this same ",
            "run: the bring-up shape before the PR 8 worker-pool + pipelined handshake\",\n",
            "    \"total_p50_ms\": {st:.3},\n",
            "    \"total_p99_ms\": {st99:.3}\n",
            "  }}\n",
            "}}\n"
        ),
        quick = quick,
        nodes = NODES,
        tpn = TASKS_PER_NODE,
        tasks = NODES * TASKS_PER_NODE,
        lat = SPAWN_LATENCY.as_micros(),
        samples = samples,
        workers = DEFAULT_LAUNCH_WORKERS,
        par = phase_json(&parallel),
        seq = phase_json(&sequential),
        pt = parallel.total.p50,
        st = sequential.total.p50,
        st99 = sequential.total.p99,
        sp = speedup,
        ss = storm_sessions,
        sn = STORM_NODES,
        stpn = STORM_TASKS_PER_NODE,
        sps = storm_rate,
        sq50 = storm_totals.p50,
        sq99 = storm_totals.p99,
    );
    // Anchor the artifact at the workspace root regardless of the bench's
    // working directory, so CI (and humans) always find it in one place.
    let mut f = std::fs::File::create(&out).expect("create BENCH_launch.json");
    f.write_all(json.as_bytes()).expect("write BENCH_launch.json");
    println!("\nwrote {}", out.display());

    let skip_gate = std::env::var("LMON_BENCH_SKIP_GATE").map(|v| v == "1").unwrap_or(false);

    // Acceptance gate: the ISSUE 8 criterion, re-checked on every run. Both
    // arms are measured on this machine in this run, so the ratio needs no
    // committed reference and no hardware allowance.
    if skip_gate {
        println!("acceptance gate skipped (LMON_BENCH_SKIP_GATE=1)");
    } else if speedup < ACCEPT_SPEEDUP {
        eprintln!(
            "ACCEPTANCE GATE FAILED: parallel bring-up is only {speedup:.2}x the sequential \
             baseline at 1x{NODES}x{} (floor {ACCEPT_SPEEDUP:.1}x). Set LMON_BENCH_SKIP_GATE=1 \
             to skip on noisy runners.",
            NODES * TASKS_PER_NODE
        );
        std::process::exit(1);
    } else {
        println!("acceptance gate passed: {speedup:.2}x >= {ACCEPT_SPEEDUP:.1}x");
    }

    // Regression gate vs the committed artifact (lower total is better, so
    // the absolute condition inverts relative to the throughput benches).
    match committed {
        Some((committed_total, committed_speedup)) if !skip_gate => {
            let ceiling = committed_total / GATE_FLOOR;
            let speedup_floor = committed_speedup * GATE_FLOOR;
            if parallel.total.p50 > ceiling && speedup < speedup_floor {
                eprintln!(
                    "REGRESSION GATE FAILED: p50 total {:.2}ms is more than 30% above the \
                     committed {committed_total:.2}ms (ceiling {ceiling:.2}ms) AND the speedup \
                     {speedup:.2}x fell below {speedup_floor:.2}x (committed \
                     {committed_speedup:.2}x), so this is not just a slower machine. Set \
                     LMON_BENCH_SKIP_GATE=1 to skip on noisy runners.",
                    parallel.total.p50
                );
                std::process::exit(1);
            }
            println!(
                "regression gate passed: {:.2}ms p50 (ceiling {ceiling:.2}ms, committed \
                 {committed_total:.2}ms); speedup {speedup:.2}x (committed \
                 {committed_speedup:.2}x)",
                parallel.total.p50
            );
        }
        Some(_) => println!("regression gate skipped (LMON_BENCH_SKIP_GATE=1)"),
        None => {
            println!("regression gate skipped (no committed BENCH_launch.json in this run's mode)")
        }
    }
}
