//! `upgrade_rolling` — planned maintenance, quantified (DESIGN.md §12).
//!
//! Measurements backing the ISSUE 9 acceptance criteria: the rolling
//! comm-daemon upgrade walk over a spare-backed overlay (per-step drain
//! and replace latency, p50/p99), and silent-halt detection latency under
//! background phi-accrual suspicion versus the PR 5 caller-driven
//! heartbeat sweep it replaces.
//!
//! Per upgrade iteration a fresh overlay is built, connected, probed
//! healthy, put under suspicion, and walked end to end with
//! [`FrontEndpoint::rolling_upgrade`]; the walk must finish with zero
//! unplanned repairs and the next broadcast must still reach every BE
//! (`sessions_uninterrupted`). Detection cycles halt one comm silently
//! (`FrontEndpoint::halt_comm`, the `kill -9` analogue) and time
//! phi-accrual suspicion against a caller-driven sweep; the sweep baseline
//! includes the half-interval a death waits, on average, before the next
//! scheduled sweep even begins (PR 5 ran sweeps on a 100 ms cadence).
//!
//! Results print as a table and are written to `BENCH_upgrade.json` at
//! the workspace root (CI uploads it as an artifact); the JSON carries a
//! `baseline` block (this subsystem's first committed numbers) so the
//! trajectory is self-describing. Quick mode for CI: `LMON_BENCH_QUICK=1`.
//!
//! **Regression gate**: unless `LMON_BENCH_SKIP_GATE=1`, the run fails if
//! the primary shape's median per-step upgrade latency regresses more
//! than 30% over the committed `BENCH_upgrade.json` (same-mode runs only)
//! *and* the hardware-neutral step/healthy-RTT ratio regressed by more
//! than 30% too — a uniformly slower runner passes, a real
//! maintenance-path regression fails.

use std::io::Write as _;
use std::time::{Duration, Instant};

use lmon_bench::{extract_json_number, print_table, Row};
use lmon_tbon::filter::FilterKind;
use lmon_tbon::spec::{NodePos, TopologySpec};
use lmon_tbon::PhiAccrualParams;
use lmon_testkit::{FaultPlan, LiveOverlay};

/// Tree shapes measured, primary (gated) shape first — every shape
/// carries a full spare pool so each walk step replaces from a spare.
const SHAPES: &[&str] = &["1x8x64+8", "1x4x32+4"];

/// The PR 5 sweep cadence: a silent death waits, on average, half this
/// interval before the sweep that attributes it even begins.
const SWEEP_INTERVAL: Duration = Duration::from_millis(100);

/// First committed numbers for this subsystem (quick mode, the CI
/// configuration), so any later reader of the JSON sees the trajectory
/// without digging through git history.
const BASELINE_PR: u32 = 9;
const BASELINE_SHAPE: &str = "1x8x64+8";
const BASELINE_STEP_US: f64 = 621.0;
const BASELINE_HEALTHY_RTT_US: f64 = 403.0;

/// Gate: fail when the new median step latency exceeds the committed one
/// by more than this factor (and the RTT-normalized ratio agrees).
const GATE_CEILING: f64 = 1.30;

fn quick_mode() -> bool {
    std::env::var("LMON_BENCH_QUICK").map(|v| v == "1").unwrap_or(false)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

/// Nearest-rank percentile (`q` in 0..=1) over unsorted samples.
fn percentile(mut v: Vec<f64>, q: f64) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[((v.len() - 1) as f64 * q).round() as usize]
}

struct UpgradeCycle {
    healthy_rtt_us: f64,
    /// Per-step drain latencies (µs) from [`UpgradeStep::drain`].
    drain_us: Vec<f64>,
    /// Per-step total latencies (µs): drain + re-adopt + verify.
    step_us: Vec<f64>,
    rolling_total_us: f64,
    uninterrupted: bool,
}

/// One full rolling-upgrade walk on a fresh spare-backed overlay.
fn one_upgrade_cycle(shape: &str) -> UpgradeCycle {
    let spec = TopologySpec::parse(shape).expect("valid shape");
    let leaves = spec.leaf_count();
    let mut live = LiveOverlay::launch_echo(shape, &FaultPlan::new());
    live.front.await_connections(leaves, Duration::from_secs(20)).expect("connect");
    let _table = live.front.maintenance().start_suspicion(PhiAccrualParams::default());
    let stream = live.front.open_stream(FilterKind::Concat).expect("stream");

    // Healthy round trip (wave 1): the same-run hardware normalizer.
    let h0 = Instant::now();
    live.front.broadcast(stream, 1, vec![]).expect("healthy broadcast");
    let pkt = live.front.gather(stream, 1, Duration::from_secs(20)).expect("healthy gather");
    let healthy_rtt_us = h0.elapsed().as_secs_f64() * 1e6;
    assert_eq!(pkt.payload.len(), leaves as usize);

    let t0 = Instant::now();
    let report =
        live.front.maintenance().rolling_upgrade(Duration::from_secs(20)).expect("rolling upgrade");
    let rolling_total_us = t0.elapsed().as_secs_f64() * 1e6;

    // Zero interruption: no unplanned repairs anywhere in the walk, and
    // the very next wave still reaches every BE.
    live.front.broadcast(stream, 2, vec![]).expect("post-upgrade broadcast");
    let pkt = live.front.gather(stream, 2, Duration::from_secs(20)).expect("post-upgrade gather");
    let uninterrupted = report.unplanned_repairs == 0 && pkt.payload.len() == leaves as usize;

    let drain_us = report.steps.iter().map(|s| s.drain.as_secs_f64() * 1e6).collect();
    let step_us = report.steps.iter().map(|s| s.total.as_secs_f64() * 1e6).collect();
    live.shutdown();
    UpgradeCycle { healthy_rtt_us, drain_us, step_us, rolling_total_us, uninterrupted }
}

/// Halt one comm silently and time detection by background phi-accrual
/// suspicion (halt → route-table death visible to `wait_failure`).
fn one_phi_detect_cycle(shape: &str) -> f64 {
    let spec = TopologySpec::parse(shape).expect("valid shape");
    let victim = NodePos { level: 1, index: spec.levels()[1] / 2 };
    let mut live = LiveOverlay::launch_echo(shape, &FaultPlan::new());
    live.front.await_connections(spec.leaf_count(), Duration::from_secs(20)).expect("connect");
    let _table = live.front.maintenance().start_suspicion(PhiAccrualParams::default());
    let t0 = Instant::now();
    live.front.halt_comm(victim).expect("halt switch");
    let dead = live.front.wait_failure(Duration::from_secs(20)).expect("suspicion detects");
    assert_eq!(dead, victim);
    let detect_us = t0.elapsed().as_secs_f64() * 1e6;
    live.shutdown();
    detect_us
}

/// The same silent halt detected the PR 5 way: a caller-driven heartbeat
/// sweep. The measured figure is the sweep's own execution time plus the
/// average half-interval the death sits undetected before the next
/// scheduled sweep starts.
fn one_sweep_detect_cycle(shape: &str) -> f64 {
    let spec = TopologySpec::parse(shape).expect("valid shape");
    let victim = NodePos { level: 1, index: spec.levels()[1] / 2 };
    let mut live = LiveOverlay::launch_echo(shape, &FaultPlan::new());
    live.front.await_connections(spec.leaf_count(), Duration::from_secs(20)).expect("connect");
    live.front.halt_comm(victim).expect("halt switch");
    let t0 = Instant::now();
    loop {
        let missing = live.front.heartbeat(SWEEP_INTERVAL);
        if missing.contains(&victim) {
            break;
        }
        assert!(t0.elapsed() < Duration::from_secs(20), "sweep never attributed the halt");
    }
    let detect_us = (t0.elapsed() + SWEEP_INTERVAL / 2).as_secs_f64() * 1e6;
    live.shutdown();
    detect_us
}

#[derive(Debug)]
struct ShapeResult {
    shape: String,
    iterations: usize,
    steps_per_walk: usize,
    healthy_rtt_us: f64,
    drain_p50_us: f64,
    drain_p99_us: f64,
    step_p50_us: f64,
    step_p99_us: f64,
    rolling_total_us: f64,
    phi_detect_us: f64,
    sweep_detect_us: f64,
    sessions_uninterrupted: usize,
}

fn measure(shape: &str, iters: usize) -> ShapeResult {
    let cycles: Vec<UpgradeCycle> = (0..iters).map(|_| one_upgrade_cycle(shape)).collect();
    let drains: Vec<f64> = cycles.iter().flat_map(|c| c.drain_us.iter().copied()).collect();
    let steps: Vec<f64> = cycles.iter().flat_map(|c| c.step_us.iter().copied()).collect();
    ShapeResult {
        shape: shape.to_string(),
        iterations: iters,
        steps_per_walk: cycles[0].step_us.len(),
        healthy_rtt_us: median(cycles.iter().map(|c| c.healthy_rtt_us).collect()),
        drain_p50_us: percentile(drains.clone(), 0.50),
        drain_p99_us: percentile(drains, 0.99),
        step_p50_us: percentile(steps.clone(), 0.50),
        step_p99_us: percentile(steps, 0.99),
        rolling_total_us: median(cycles.iter().map(|c| c.rolling_total_us).collect()),
        phi_detect_us: median((0..iters).map(|_| one_phi_detect_cycle(shape)).collect()),
        sweep_detect_us: median((0..iters).map(|_| one_sweep_detect_cycle(shape)).collect()),
        sessions_uninterrupted: cycles.iter().filter(|c| c.uninterrupted).count(),
    }
}

fn fmt_us(v: f64) -> String {
    format!("{v:.0}us")
}

fn main() {
    let quick = quick_mode();
    let iters = if quick { 3 } else { 10 };

    // Read the committed artifact *before* overwriting; the gate only arms
    // for a same-mode artifact (quick and full runs are not comparable).
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_upgrade.json");
    let committed = std::fs::read_to_string(&out).ok().and_then(|json| {
        let committed_quick = json.contains("\"quick\": true");
        if committed_quick != quick {
            return None;
        }
        // The primary shape is the first entry in the shapes array.
        let at = json.find(&format!("\"shape\": \"{}\"", SHAPES[0]))?;
        let tail = &json[at..];
        let step = extract_json_number(tail, "\"step_p50_us\":")?;
        let rtt = extract_json_number(tail, "\"healthy_rtt_us\":")?;
        Some((step, rtt))
    });

    let results: Vec<ShapeResult> = SHAPES.iter().map(|s| measure(s, iters)).collect();

    let rows: Vec<Row> = results
        .iter()
        .map(|r| Row {
            x: r.shape.clone(),
            values: vec![
                fmt_us(r.healthy_rtt_us),
                format!("{}/{}", fmt_us(r.drain_p50_us), fmt_us(r.drain_p99_us)),
                format!("{}/{}", fmt_us(r.step_p50_us), fmt_us(r.step_p99_us)),
                fmt_us(r.rolling_total_us),
                format!("{}/{}", fmt_us(r.phi_detect_us), fmt_us(r.sweep_detect_us)),
                format!("{}/{}", r.sessions_uninterrupted, r.iterations),
            ],
        })
        .collect();
    print_table(
        "rolling comm-daemon upgrade (drain -> hot-spare takeover -> verify)",
        "shape",
        &["healthy rtt", "drain p50/p99", "step p50/p99", "walk total", "phi/sweep", "intact"],
        &rows,
    );
    println!(
        "baseline (PR {BASELINE_PR}, {BASELINE_SHAPE}): step p50 {BASELINE_STEP_US:.0}us over a \
         {BASELINE_HEALTHY_RTT_US:.0}us healthy rtt"
    );

    // Acceptance: every walk on every shape finished with zero unplanned
    // repairs and a complete post-upgrade wave, and phi-accrual detection
    // is no slower than the caller-driven sweep it replaces.
    for r in &results {
        assert_eq!(
            r.sessions_uninterrupted, r.iterations,
            "{}: an upgrade walk interrupted the session",
            r.shape
        );
        assert!(
            r.phi_detect_us <= r.sweep_detect_us,
            "{}: phi-accrual detection ({:.0}us) slower than the PR 5 sweep baseline ({:.0}us)",
            r.shape,
            r.phi_detect_us,
            r.sweep_detect_us
        );
    }

    let shapes_json = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"shape\": \"{}\", \"iterations\": {}, \"steps_per_walk\": {}, ",
                    "\"healthy_rtt_us\": {:.0}, \"drain_p50_us\": {:.0}, \"drain_p99_us\": {:.0}, ",
                    "\"step_p50_us\": {:.0}, \"step_p99_us\": {:.0}, \"rolling_total_us\": {:.0}, ",
                    "\"phi_detect_us\": {:.0}, \"sweep_detect_us\": {:.0}, ",
                    "\"sessions_uninterrupted\": {}}}"
                ),
                r.shape,
                r.iterations,
                r.steps_per_walk,
                r.healthy_rtt_us,
                r.drain_p50_us,
                r.drain_p99_us,
                r.step_p50_us,
                r.step_p99_us,
                r.rolling_total_us,
                r.phi_detect_us,
                r.sweep_detect_us,
                r.sessions_uninterrupted
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"quick\": {quick},\n",
            "  \"shapes\": [\n",
            "{shapes}\n",
            "  ],\n",
            "  \"baseline\": {{\n",
            "    \"pr\": {bpr},\n",
            "    \"shape\": \"{bshape}\",\n",
            "    \"step_p50_us\": {bstep:.0},\n",
            "    \"healthy_rtt_us\": {brtt:.0}\n",
            "  }}\n",
            "}}\n"
        ),
        quick = quick,
        shapes = shapes_json,
        bpr = BASELINE_PR,
        bshape = BASELINE_SHAPE,
        bstep = BASELINE_STEP_US,
        brtt = BASELINE_HEALTHY_RTT_US,
    );
    let mut f = std::fs::File::create(&out).expect("create BENCH_upgrade.json");
    f.write_all(json.as_bytes()).expect("write BENCH_upgrade.json");
    println!("\nwrote {}", out.display());

    // Regression gate, mirroring the recovery gate's two-signal design:
    // the absolute step latency must regress >30% AND the same-run
    // step/healthy-rtt ratio must regress >30% before the run fails, so a
    // uniformly slower runner shifts both and passes.
    let skip_gate = std::env::var("LMON_BENCH_SKIP_GATE").map(|v| v == "1").unwrap_or(false);
    let primary = &results[0];
    match committed {
        Some((committed_step, committed_rtt)) if !skip_gate => {
            let ceiling = committed_step * GATE_CEILING;
            let committed_ratio = committed_step / committed_rtt.max(1.0);
            let ratio = primary.step_p50_us / primary.healthy_rtt_us.max(1.0);
            let ratio_ceiling = committed_ratio * GATE_CEILING;
            if primary.step_p50_us > ceiling && ratio > ratio_ceiling {
                eprintln!(
                    "REGRESSION GATE FAILED: step_p50_us {:.0} is more than 30% above the \
                     committed {committed_step:.0} (ceiling {ceiling:.0}) AND the \
                     step/healthy-rtt ratio {ratio:.2} exceeds {ratio_ceiling:.2} (committed \
                     {committed_ratio:.2}), so this is not just a slower machine. Set \
                     LMON_BENCH_SKIP_GATE=1 to skip on noisy runners.",
                    primary.step_p50_us
                );
                std::process::exit(1);
            }
            println!(
                "regression gate passed: {:.0}us (ceiling {ceiling:.0}, committed \
                 {committed_step:.0}); step/rtt ratio {ratio:.2} (committed {committed_ratio:.2})",
                primary.step_p50_us
            );
        }
        Some(_) => println!("regression gate skipped (LMON_BENCH_SKIP_GATE=1)"),
        None => {
            println!("regression gate skipped (no committed BENCH_upgrade.json in this run's mode)")
        }
    }
}
