//! `recovery_latency` — the self-healing TBON, quantified.
//!
//! Measurements backing the ISSUE 5 acceptance criteria: how long the
//! overlay takes to go from a comm-daemon kill to the first *post-heal*
//! end-to-end broadcast (kill → detect → repair → broadcast+gather), per
//! tree shape, with the phase breakdown and the same-run healthy
//! broadcast RTT as the hardware normalizer.
//!
//! Per iteration a fresh overlay is built, connected, and probed healthy;
//! then an interior comm daemon is killed through the deterministic crash
//! path (`FrontEndpoint::crash_comm` — the same LinkDown/ChildGone close a
//! `CommFault` crash runs), the failure is detected, repaired by
//! grandparent adoption, and the next broadcast must reach every BE.
//!
//! Results print as a table and are written to `BENCH_recovery.json` at
//! the workspace root (CI uploads it as an artifact); the JSON carries a
//! `baseline` block (this subsystem's first committed numbers) so the
//! trajectory is self-describing. Quick mode for CI: `LMON_BENCH_QUICK=1`.
//!
//! **Regression gate**: unless `LMON_BENCH_SKIP_GATE=1`, the run fails if
//! the primary shape's median `recovery_latency_us` regresses more than
//! 30% over the committed `BENCH_recovery.json` (same-mode runs only)
//! *and* the hardware-neutral recovery/healthy-RTT ratio regressed by more
//! than 30% too — a uniformly slower runner passes, a real recovery-path
//! regression fails.

use std::io::Write as _;
use std::time::{Duration, Instant};

use lmon_bench::{extract_json_number, print_table, Row};
use lmon_tbon::filter::FilterKind;
use lmon_tbon::spec::{NodePos, TopologySpec};
use lmon_testkit::{FaultPlan, LiveOverlay};

/// Tree shapes measured, primary (gated) shape first.
const SHAPES: &[&str] = &["1x8x64", "1x16x256"];

/// First committed numbers for this subsystem (quick mode, the CI
/// configuration), so any later reader of the JSON sees the trajectory
/// without digging through git history.
const BASELINE_PR: u32 = 5;
const BASELINE_SHAPE: &str = "1x8x64";
const BASELINE_RECOVERY_US: f64 = 548.0;
const BASELINE_HEALTHY_RTT_US: f64 = 390.0;

/// Gate: fail when the new median recovery latency exceeds the committed
/// one by more than this factor (and the RTT-normalized ratio agrees).
const GATE_CEILING: f64 = 1.30;

fn quick_mode() -> bool {
    std::env::var("LMON_BENCH_QUICK").map(|v| v == "1").unwrap_or(false)
}

#[derive(Debug, Clone, Copy)]
struct RecoverySample {
    healthy_rtt_us: f64,
    detect_us: f64,
    repair_us: f64,
    total_us: f64,
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

/// One kill-and-heal cycle on a fresh overlay.
fn one_cycle(shape: &str) -> RecoverySample {
    let spec = TopologySpec::parse(shape).expect("valid shape");
    let leaves = spec.leaf_count();
    // Kill the middle comm daemon of the first interior level.
    let victim = NodePos { level: 1, index: spec.levels()[1] / 2 };

    let mut live = LiveOverlay::launch_echo(shape, &FaultPlan::new());
    live.front.await_connections(leaves, Duration::from_secs(20)).expect("connect");
    let stream = live.front.open_stream(FilterKind::Concat).expect("stream");

    // Healthy round trip (wave 1): the same-run hardware normalizer.
    let h0 = Instant::now();
    live.front.broadcast(stream, 1, vec![]).expect("healthy broadcast");
    let pkt = live.front.gather(stream, 1, Duration::from_secs(20)).expect("healthy gather");
    let healthy_rtt_us = h0.elapsed().as_secs_f64() * 1e6;
    assert_eq!(pkt.payload.len(), leaves as usize);

    // Kill → detect → repair → first post-heal end-to-end broadcast.
    let t0 = Instant::now();
    live.front.crash_comm(victim).expect("kill switch");
    let dead = live.front.wait_failure(Duration::from_secs(20)).expect("detect");
    assert_eq!(dead, victim);
    let detect_us = t0.elapsed().as_secs_f64() * 1e6;
    let reports = live.front.heal_failures().expect("repair");
    assert_eq!(reports.len(), 1);
    let repair_us = t0.elapsed().as_secs_f64() * 1e6 - detect_us;
    live.front.broadcast(stream, 2, vec![]).expect("post-heal broadcast");
    let pkt = live.front.gather(stream, 2, Duration::from_secs(20)).expect("post-heal gather");
    let total_us = t0.elapsed().as_secs_f64() * 1e6;
    assert_eq!(pkt.payload.len(), leaves as usize, "heal must recover every BE");

    live.shutdown();
    RecoverySample { healthy_rtt_us, detect_us, repair_us, total_us }
}

#[derive(Debug)]
struct ShapeResult {
    shape: String,
    iterations: usize,
    healthy_rtt_us: f64,
    detect_us: f64,
    repair_us: f64,
    recovery_latency_us: f64,
}

fn measure(shape: &str, iters: usize) -> ShapeResult {
    let samples: Vec<RecoverySample> = (0..iters).map(|_| one_cycle(shape)).collect();
    ShapeResult {
        shape: shape.to_string(),
        iterations: iters,
        healthy_rtt_us: median(samples.iter().map(|s| s.healthy_rtt_us).collect()),
        detect_us: median(samples.iter().map(|s| s.detect_us).collect()),
        repair_us: median(samples.iter().map(|s| s.repair_us).collect()),
        recovery_latency_us: median(samples.iter().map(|s| s.total_us).collect()),
    }
}

fn fmt_us(v: f64) -> String {
    format!("{v:.0}us")
}

fn main() {
    let quick = quick_mode();
    let iters = if quick { 3 } else { 10 };

    // Read the committed artifact *before* overwriting; the gate only arms
    // for a same-mode artifact (quick and full runs are not comparable).
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_recovery.json");
    let committed = std::fs::read_to_string(&out).ok().and_then(|json| {
        let committed_quick = json.contains("\"quick\": true");
        if committed_quick != quick {
            return None;
        }
        // The primary shape is the first entry in the shapes array.
        let at = json.find(&format!("\"shape\": \"{}\"", SHAPES[0]))?;
        let tail = &json[at..];
        let latency = extract_json_number(tail, "\"recovery_latency_us\":")?;
        let rtt = extract_json_number(tail, "\"healthy_rtt_us\":")?;
        Some((latency, rtt))
    });

    let results: Vec<ShapeResult> = SHAPES.iter().map(|s| measure(s, iters)).collect();

    let rows: Vec<Row> = results
        .iter()
        .map(|r| Row {
            x: r.shape.clone(),
            values: vec![
                fmt_us(r.healthy_rtt_us),
                fmt_us(r.detect_us),
                fmt_us(r.repair_us),
                fmt_us(r.recovery_latency_us),
                format!("{:.1}x", r.recovery_latency_us / r.healthy_rtt_us.max(1.0)),
            ],
        })
        .collect();
    print_table(
        "overlay recovery latency (kill -> first post-heal broadcast, median)",
        "shape",
        &["healthy rtt", "detect", "repair", "recovery", "vs rtt"],
        &rows,
    );
    println!(
        "baseline (PR {BASELINE_PR}, {BASELINE_SHAPE}): recovery {BASELINE_RECOVERY_US:.0}us over \
         a {BASELINE_HEALTHY_RTT_US:.0}us healthy rtt"
    );

    let shapes_json = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"shape\": \"{}\", \"iterations\": {}, \"healthy_rtt_us\": {:.0}, ",
                    "\"detect_us\": {:.0}, \"repair_us\": {:.0}, \"recovery_latency_us\": {:.0}}}"
                ),
                r.shape,
                r.iterations,
                r.healthy_rtt_us,
                r.detect_us,
                r.repair_us,
                r.recovery_latency_us
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"quick\": {quick},\n",
            "  \"shapes\": [\n",
            "{shapes}\n",
            "  ],\n",
            "  \"baseline\": {{\n",
            "    \"pr\": {bpr},\n",
            "    \"shape\": \"{bshape}\",\n",
            "    \"recovery_latency_us\": {blat:.0},\n",
            "    \"healthy_rtt_us\": {brtt:.0}\n",
            "  }}\n",
            "}}\n"
        ),
        quick = quick,
        shapes = shapes_json,
        bpr = BASELINE_PR,
        bshape = BASELINE_SHAPE,
        blat = BASELINE_RECOVERY_US,
        brtt = BASELINE_HEALTHY_RTT_US,
    );
    let mut f = std::fs::File::create(&out).expect("create BENCH_recovery.json");
    f.write_all(json.as_bytes()).expect("write BENCH_recovery.json");
    println!("\nwrote {}", out.display());

    // Regression gate, mirroring the transport gate's two-signal design:
    // the absolute latency must regress >30% AND the same-run
    // recovery/healthy-rtt ratio must regress >30% before the run fails,
    // so a uniformly slower runner shifts both and passes.
    let skip_gate = std::env::var("LMON_BENCH_SKIP_GATE").map(|v| v == "1").unwrap_or(false);
    let primary = &results[0];
    match committed {
        Some((committed_latency, committed_rtt)) if !skip_gate => {
            let ceiling = committed_latency * GATE_CEILING;
            let committed_ratio = committed_latency / committed_rtt.max(1.0);
            let ratio = primary.recovery_latency_us / primary.healthy_rtt_us.max(1.0);
            let ratio_ceiling = committed_ratio * GATE_CEILING;
            if primary.recovery_latency_us > ceiling && ratio > ratio_ceiling {
                eprintln!(
                    "REGRESSION GATE FAILED: recovery_latency_us {:.0} is more than 30% above \
                     the committed {committed_latency:.0} (ceiling {ceiling:.0}) AND the \
                     recovery/healthy-rtt ratio {ratio:.2} exceeds {ratio_ceiling:.2} (committed \
                     {committed_ratio:.2}), so this is not just a slower machine. Set \
                     LMON_BENCH_SKIP_GATE=1 to skip on noisy runners.",
                    primary.recovery_latency_us
                );
                std::process::exit(1);
            }
            println!(
                "regression gate passed: {:.0}us (ceiling {ceiling:.0}, committed \
                 {committed_latency:.0}); recovery/rtt ratio {ratio:.2} (committed \
                 {committed_ratio:.2})",
                primary.recovery_latency_us
            );
        }
        Some(_) => println!("regression gate skipped (LMON_BENCH_SKIP_GATE=1)"),
        None => println!(
            "regression gate skipped (no committed BENCH_recovery.json in this run's mode)"
        ),
    }
}
