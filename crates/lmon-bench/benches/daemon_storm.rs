//! `daemon_storm` — launch-storm throughput through `lmond`'s admission
//! queue (ISSUE 7 tentpole measurement).
//!
//! Replays the §2 ≈504-session storm against a live daemon over its Unix
//! control socket at several admission limits, reporting sessions/s and
//! the observed concurrency bound. The point being quantified: admission
//! control trades a hard failure cliff for a throughput knob — every
//! limit completes the storm with zero failures, and the limit, not the
//! client count, dictates peak concurrency.
//!
//! Results go to stdout and `BENCH_daemon.json` at the workspace root.
//! Quick mode for CI: `LMON_BENCH_QUICK=1` (a 126-session storm).

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use lmon_bench::{print_table, Row};
use lmon_daemon::client::scratch_socket_path;
use lmon_daemon::{bind_and_start, DaemonClient, DaemonConfig};
use lmon_testkit::StormPlan;

struct StormResult {
    limit: usize,
    sessions: usize,
    failures: usize,
    peak_in_flight: usize,
    peak_waiting: usize,
    secs: f64,
}

fn run_storm(limit: usize, plan: &StormPlan, tag: &str) -> StormResult {
    let socket = scratch_socket_path(&format!("bench-{tag}-{limit}"));
    let _ = std::fs::remove_file(&socket);
    let cfg = DaemonConfig {
        backends: 2,
        cluster_nodes: 64,
        admission_limit: limit,
        queue_capacity: 2048,
        ..DaemonConfig::default()
    };
    let handle = bind_and_start(cfg, &socket, None).expect("daemon up");
    let daemon = Arc::clone(handle.daemon());

    let start_line = Arc::new(Barrier::new(plan.clients + 1));
    let failures = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..plan.clients)
        .map(|c| {
            let socket = socket.clone();
            let launches = plan.client_launches(c);
            let start_line = Arc::clone(&start_line);
            let failures = Arc::clone(&failures);
            std::thread::spawn(move || {
                let mut client = DaemonClient::connect_unix(&socket).expect("connect");
                start_line.wait();
                for l in launches {
                    match client.launch("bench_app", l.nodes, l.tasks_per_node, "oneshot") {
                        Ok(resp) => {
                            if client.kill(resp.gsid).is_err() {
                                failures.fetch_add(1, Ordering::SeqCst);
                            }
                        }
                        Err(_) => {
                            failures.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            })
        })
        .collect();
    start_line.wait();
    let t0 = Instant::now();
    for w in workers {
        w.join().expect("client thread");
    }
    let secs = t0.elapsed().as_secs_f64();
    let adm = daemon.admission().stats();
    handle.shutdown();
    let _ = std::fs::remove_file(&socket);
    StormResult {
        limit,
        sessions: plan.total_sessions(),
        failures: failures.load(Ordering::SeqCst),
        peak_in_flight: adm.peak_in_flight,
        peak_waiting: adm.peak_waiting,
        secs,
    }
}

fn main() {
    let quick = std::env::var("LMON_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
    // Quick mode still storms (144 sessions), full mode is the paper's 504.
    // Quick uses *more* clients than any admission limit under test (36 >
    // 32) so the largest limit is demonstrably the concurrency bound:
    // every row's peak in-flight is pinned by the limit, not by the
    // client count.
    let plan = if quick { StormPlan::new(36, 4, 2, 7) } else { StormPlan::paper_504(7) };
    let limits = [2usize, 8, 32];

    let results: Vec<StormResult> =
        limits.iter().map(|&l| run_storm(l, &plan, if quick { "q" } else { "f" })).collect();

    print_table(
        &format!("launch storm through lmond ({} sessions, oneshot bodies)", plan.total_sessions()),
        "admission limit",
        &["sessions/s", "peak in-flight", "peak queued", "failures"],
        &results
            .iter()
            .map(|r| Row {
                x: r.limit.to_string(),
                values: vec![
                    format!("{:.0}", r.sessions as f64 / r.secs),
                    r.peak_in_flight.to_string(),
                    r.peak_waiting.to_string(),
                    r.failures.to_string(),
                ],
            })
            .collect::<Vec<_>>(),
    );

    // The bench doubles as a coarse invariant check: admission control must
    // hold its two promises at every limit, or the numbers are meaningless.
    for r in &results {
        assert_eq!(r.failures, 0, "limit {}: storm must not fail launches", r.limit);
        assert!(
            r.peak_in_flight <= r.limit,
            "limit {}: peak in-flight {} broke the bound",
            r.limit,
            r.peak_in_flight
        );
    }
    println!(
        "all {} storms completed with zero failures; concurrency bounded by the limit each time",
        results.len()
    );

    let rows_json = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"limit\": {}, \"sessions\": {}, \"sessions_per_s\": {:.0}, \
                 \"peak_in_flight\": {}, \"peak_waiting\": {}, \"failures\": {}}}",
                r.limit,
                r.sessions,
                r.sessions as f64 / r.secs,
                r.peak_in_flight,
                r.peak_waiting,
                r.failures
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"quick\": {quick},\n  \"storm_sessions\": {},\n  \"runs\": [\n{rows_json}\n  ]\n}}\n",
        plan.total_sessions()
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_daemon.json");
    let mut f = std::fs::File::create(&out).expect("create BENCH_daemon.json");
    f.write_all(json.as_bytes()).expect("write BENCH_daemon.json");
    println!("\nwrote {}", out.display());
}
