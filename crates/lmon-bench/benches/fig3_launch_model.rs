//! Figure 3: modeled vs measured `launchAndSpawn` performance, 16→128 tool
//! daemons (8 MPI tasks per daemon), with the per-component breakdown the
//! paper stacks: T(collective), T(daemon)+T(setup), T(job), tracing cost,
//! handshaking cost (Region C), RPDTAB fetch (Region B), other.
//!
//! Also runs the paper's §4 methodology end to end: fit T(op) models from
//! small-scale simulated measurements, extrapolate, and report fit quality.

use lmon_bench::{print_table, s3, Row, PAPER_FIG3_SHARE_128};
use lmon_model::fit::{fit_best, r_squared};
use lmon_model::predict::launch_breakdown;
use lmon_model::scenario::simulate_launch;
use lmon_model::CostParams;

fn main() {
    let p = CostParams::default();
    let daemon_counts = [16usize, 32, 48, 64, 80, 96, 128];

    // --- the Figure 3 table ------------------------------------------------
    let mut rows = Vec::new();
    for &d in &daemon_counts {
        let sim = simulate_launch(&p, d, 8);
        let model = launch_breakdown(&p, d, 8);
        let c = &sim.components;
        rows.push(Row {
            x: format!("{d}"),
            values: vec![
                s3(model.total()),
                s3(sim.total()),
                s3(c.t_collective),
                s3(c.t_daemon + c.t_setup),
                s3(c.t_job),
                s3(c.t_tracing),
                s3(c.t_handshake),
                s3(c.t_rpdtab),
                s3(c.t_other),
                format!("{:.1}%", c.launchmon_share() * 100.0),
            ],
        });
    }
    print_table(
        "Figure 3: launchAndSpawn, modeled vs measured (8 tasks/daemon)",
        "daemons",
        &[
            "model",
            "measured",
            "T(coll)",
            "T(dmn)+T(setup)",
            "T(job)",
            "tracing",
            "handshake(C)",
            "rpdtab(B)",
            "other",
            "LMON share",
        ],
        &rows,
    );

    // --- paper anchors -----------------------------------------------------
    let at128 = simulate_launch(&p, 128, 8);
    println!("\npaper: <1 s at 128 daemons (1024 tasks)  | reproduced: {}", s3(at128.total()));
    println!(
        "paper: LaunchMON share ≈ {:.1}%          | reproduced: {:.1}%",
        PAPER_FIG3_SHARE_128 * 100.0,
        at128.components.launchmon_share() * 100.0
    );

    // --- §4 methodology: fit T(op) at small scale, extrapolate -------------
    println!("\n--- fitted T(op) models from small-scale measurements (4..32 daemons) ---");
    let small: Vec<usize> = vec![4, 8, 12, 16, 24, 32];
    let xs: Vec<f64> = small.iter().map(|&d| d as f64).collect();
    type Series<'a> = (&'a str, Box<dyn Fn(usize) -> f64>);
    let series: Vec<Series> = vec![
        ("T(job)", Box::new(|d| simulate_launch(&CostParams::default(), d, 8).components.t_job)),
        (
            "T(daemon)",
            Box::new(|d| simulate_launch(&CostParams::default(), d, 8).components.t_daemon),
        ),
        (
            "T(setup)",
            Box::new(|d| simulate_launch(&CostParams::default(), d, 8).components.t_setup),
        ),
        (
            "T(collective)",
            Box::new(|d| simulate_launch(&CostParams::default(), d, 8).components.t_collective),
        ),
    ];
    for (name, f) in &series {
        let ys: Vec<f64> = small.iter().map(|&d| f(d)).collect();
        let model = fit_best(&xs, &ys);
        let r2 = r_squared(&model, &xs, &ys);
        let pred_128 = model.eval(128.0);
        let meas_128 = f(128);
        println!(
            "{name:<14} = {:<28} (R²={r2:.4})  extrapolated@128: {}  measured@128: {}",
            model.describe(),
            s3(pred_128),
            s3(meas_128)
        );
    }
    println!("\nfig3_launch_model: done");
}
