//! Table 1: O|SS APAI access times — DPCL vs LaunchMON, 2→32 nodes.
//!
//! Simulated at paper scale with calibrated constants, plus a real
//! execution at laptop scale demonstrating the structural cause: DPCL
//! parses the whole RM launcher binary before touching the APAI; the
//! LaunchMON instrumentor reads exactly the MPIR symbols it needs.

use std::sync::Arc;

use lmon_bench::{paper_ref, print_table, Row, PAPER_TABLE1_DPCL, PAPER_TABLE1_LMON};
use lmon_cluster::config::ClusterConfig;
use lmon_cluster::VirtualCluster;
use lmon_core::fe::LmonFrontEnd;
use lmon_model::scenario::simulate_oss_apai;
use lmon_model::CostParams;
use lmon_rm::api::{JobSpec, ResourceManager};
use lmon_rm::SlurmRm;
use lmon_tools::dpcl::{DpclInfra, SyntheticBinary};
use lmon_tools::oss::{DpclInstrumentor, Instrumentor, LaunchmonInstrumentor};

fn main() {
    let p = CostParams::default();
    let node_counts = [2usize, 4, 8, 16, 32];

    let mut rows = Vec::new();
    for &n in &node_counts {
        let (dpcl, lmon) = simulate_oss_apai(&p, n);
        rows.push(Row {
            x: format!("{n}"),
            values: vec![
                format!("{dpcl:.2}s"),
                format!("{lmon:.3}s"),
                format!("{}s", paper_ref(PAPER_TABLE1_DPCL, n).unwrap()),
                format!("{}s", paper_ref(PAPER_TABLE1_LMON, n).unwrap()),
                format!("{:.0}x", dpcl / lmon),
            ],
        });
    }
    print_table(
        "Table 1: O|SS APAI access times (simulated at paper scale)",
        "nodes",
        &["DPCL", "LaunchMON", "paper DPCL", "paper LMON", "factor"],
        &rows,
    );

    // --- real execution: the structural contrast ------------------------------
    println!("\n--- real instrumentor runs (laptop-scale binary, wall-clock) ---");
    let mut rows = Vec::new();
    for nodes in [2usize, 4, 8] {
        let cluster = VirtualCluster::new(ClusterConfig::with_nodes(nodes));
        let rm: Arc<dyn ResourceManager> = Arc::new(SlurmRm::new(cluster.clone()));
        let job = rm.launch_job(&JobSpec::new("app", nodes, 8), false).expect("job");
        std::thread::sleep(std::time::Duration::from_millis(20));

        let infra = DpclInfra::install(&cluster);
        // A launcher-sized (scaled-down 400k-symbol) binary image.
        let launcher_bin = SyntheticBinary::generate("srun", 400_000, 11);
        let mut dpcl = DpclInstrumentor::new(cluster.clone(), infra.clone(), launcher_bin);
        let d = dpcl.acquire_apai(job.launcher_pid).expect("dpcl acquire");

        let fe = LmonFrontEnd::init(rm).expect("fe");
        let mut lmon = LaunchmonInstrumentor::new(&fe);
        let l = lmon.acquire_apai(job.launcher_pid).expect("lmon acquire");
        assert_eq!(d.rpdtab, l.rpdtab, "identical APAI data from both paths");

        rows.push(Row {
            x: format!("{nodes}"),
            values: vec![
                format!("{:?}", d.apai_time),
                format!("{:?}", l.apai_time),
                format!("{}", d.rpdtab.len()),
            ],
        });
        if let Some(s) = lmon.session {
            fe.detach(s).expect("detach");
        }
        infra.uninstall();
        fe.shutdown().expect("shutdown");
    }
    print_table(
        "real execution (DPCL parses the launcher binary first)",
        "nodes",
        &["DPCL apai", "LaunchMON apai", "tasks"],
        &rows,
    );
    println!("\ntable1_oss_apai: done");
}
