//! Criterion micro-benchmarks of the real hot paths:
//!
//! * LMONP header + message encode/decode and the incremental frame reader;
//! * the mux carrier encode paths, legacy vs zero-copy, with a
//!   bytes-copied-per-message counter ([`lmon_proto::frame::encode_bytes_copied`]);
//! * RPDTAB encode/decode at several scales (the Region B/C payload);
//! * STAT prefix-tree insert/merge/serialize (the TBON filter body);
//! * ICCL collectives over the in-process fabric;
//! * DPCL binary parse (the Table 1 constant).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use lmon_iccl::{ChannelFabric, IcclComm, Topology};
use lmon_proto::frame::{
    decode_bytes_copied, decode_msg, encode_bytes_copied, encode_msg, FrameReader, MuxBatch,
    WireFrame,
};
use lmon_proto::header::MsgType;
use lmon_proto::header::HEADER_LEN;
use lmon_proto::msg::LmonpMsg;
use lmon_proto::rpdtab::{synthetic_rpdtab, Rpdtab};
use lmon_proto::wire::{WireDecode, WireEncode};
use lmon_tools::dpcl::{parse_binary, SyntheticBinary};
use lmon_tools::stat::tree::{merge_filter, PrefixTree};
use lmon_tools::stat::{synth_trace, SAMPLE_TAG};

fn bench_lmonp_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("lmonp_codec");
    let msg = LmonpMsg::of_type(MsgType::BeLaunchInfo)
        .with_tag(7)
        .with_lmon_payload(vec![0xA5; 256])
        .with_usr_payload(vec![0x5A; 128]);
    let bytes = encode_msg(&msg);
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("encode", |b| b.iter(|| encode_msg(black_box(&msg))));
    g.bench_function("decode", |b| b.iter(|| decode_msg(black_box(&bytes)).unwrap()));
    g.bench_function("frame_reader_chunked", |b| {
        b.iter(|| {
            let mut reader = FrameReader::new();
            let mut n = 0;
            for chunk in bytes.chunks(64) {
                reader.extend(chunk);
                while reader.next_msg().unwrap().is_some() {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    g.finish();
}

/// The mux carrier hot path, legacy vs zero-copy, with copy accounting.
///
/// The legacy path encodes the inner message whole, wraps it in a carrier
/// and encodes that too (what PR 3's `SessionMux::send` did per message).
/// The zero-copy path stages only header bytes and gathers payloads in
/// place. Besides the wall-clock benches, this prints the measured
/// bytes-copied-per-message for both, sampled from the process-wide
/// encode-copy counter.
fn bench_mux_carrier_encode(c: &mut Criterion) {
    let inner = LmonpMsg::of_type(MsgType::BeUsrData)
        .with_tag(7)
        .with_lmon_payload(vec![0xA5; 256])
        .with_usr_payload(vec![0x5A; 128]);

    let mut g = c.benchmark_group("mux_carrier_encode");
    g.throughput(Throughput::Bytes(inner.wire_len() as u64));
    g.bench_function("legacy_double_encode", |b| {
        b.iter(|| {
            let carrier = LmonpMsg::of_type(MsgType::MuxData)
                .with_tag(3)
                .with_lmon_payload(encode_msg(black_box(&inner)));
            encode_msg(&carrier)
        })
    });
    g.bench_function("zero_copy_gather", |b| {
        let mut scratch = Vec::new();
        b.iter(|| {
            let frame = WireFrame::Carrier { session: 3, msg: black_box(&inner).clone() };
            let n: usize = frame.gather(&mut scratch).iter().map(|s| s.len()).sum();
            black_box(n)
        })
    });
    g.finish();

    // Copied-bytes-per-message, measured off the live counter.
    const SAMPLES: u64 = 1000;
    let before = encode_bytes_copied();
    for _ in 0..SAMPLES {
        let carrier =
            LmonpMsg::of_type(MsgType::MuxData).with_tag(3).with_lmon_payload(encode_msg(&inner));
        black_box(encode_msg(&carrier));
    }
    let legacy_per_msg = (encode_bytes_copied() - before) / SAMPLES;
    let mut scratch = Vec::new();
    let before = encode_bytes_copied();
    for _ in 0..SAMPLES {
        let frame = WireFrame::Carrier { session: 3, msg: inner.clone() };
        black_box(frame.gather(&mut scratch).len());
    }
    let zero_copy_per_msg = (encode_bytes_copied() - before) / SAMPLES;
    println!(
        "\nmux carrier encode, bytes copied per {}-byte message: legacy {} | zero-copy {} \
         ({}x less)\n",
        inner.wire_len(),
        legacy_per_msg,
        zero_copy_per_msg,
        legacy_per_msg.checked_div(zero_copy_per_msg).unwrap_or(0),
    );
    assert!(
        zero_copy_per_msg < legacy_per_msg,
        "zero-copy path must copy measurably less than the legacy path"
    );
}

/// The inbound mirror of [`bench_mux_carrier_encode`]: decoding a batched
/// mux carrier, legacy vs borrowing, with copy accounting.
///
/// The legacy path materializes every payload section into fresh vectors
/// (`decode_msg` + `MuxBatch::decode_payload`). The borrowing path feeds
/// the same bytes through [`FrameReader`], which splits payloads off the
/// read buffer as refcounted views, then sub-slices each inner message
/// with [`MuxBatch::decode_payload_view`] — only header bytes are ever
/// copied. Sampled from the process-wide decode-copy counter
/// ([`lmon_proto::frame::decode_bytes_copied`]) and asserted: the borrowed
/// path must stay within header-only copies per carrier.
fn bench_mux_carrier_decode(c: &mut Criterion) {
    const INNER: usize = 8;
    let batch = MuxBatch {
        entries: (0..INNER as u16)
            .map(|i| lmon_proto::frame::MuxEntry {
                session: i,
                msg: LmonpMsg::of_type(MsgType::BeUsrData)
                    .with_tag(7)
                    .with_lmon_payload(vec![0xA5; 256])
                    .with_usr_payload(vec![0x5A; 128]),
            })
            .collect(),
    };
    let count = batch.entries.len() as u16;
    let bytes = WireFrame::Batch(batch).encode_to_vec();

    let mut g = c.benchmark_group("mux_carrier_decode");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("legacy_copying", |b| {
        b.iter(|| {
            let carrier = decode_msg(black_box(&bytes)).unwrap();
            MuxBatch::decode_payload(&carrier.lmon, count).unwrap()
        })
    });
    g.bench_function("borrowed_views", |b| {
        b.iter(|| {
            let mut reader = FrameReader::new();
            reader.extend(black_box(&bytes));
            let carrier = reader.next_msg().unwrap().expect("one whole carrier");
            MuxBatch::decode_payload_view(&carrier.lmon, count).unwrap()
        })
    });
    g.finish();

    // Copied-bytes-per-carrier, measured off the live counter.
    const SAMPLES: u64 = 1000;
    let before = decode_bytes_copied();
    for _ in 0..SAMPLES {
        let carrier = decode_msg(&bytes).unwrap();
        black_box(MuxBatch::decode_payload(&carrier.lmon, count).unwrap());
    }
    let legacy_per_carrier = (decode_bytes_copied() - before) / SAMPLES;
    let before = decode_bytes_copied();
    for _ in 0..SAMPLES {
        let mut reader = FrameReader::new();
        reader.extend(&bytes);
        let carrier = reader.next_msg().unwrap().expect("one whole carrier");
        black_box(MuxBatch::decode_payload_view(&carrier.lmon, count).unwrap());
    }
    let borrowed_per_carrier = (decode_bytes_copied() - before) / SAMPLES;
    // One carrier header plus one header per inner message is the floor the
    // borrowing path is designed to hit; allow nothing beyond it.
    let header_only = (HEADER_LEN * (INNER + 1)) as u64;
    println!(
        "\nmux carrier decode, bytes copied per {}-byte carrier ({} inner): legacy {} | \
         borrowed {} (header-only floor {})\n",
        bytes.len(),
        INNER,
        legacy_per_carrier,
        borrowed_per_carrier,
        header_only,
    );
    assert!(
        borrowed_per_carrier <= header_only,
        "borrowed decode must copy only header bytes: {borrowed_per_carrier} > {header_only}"
    );
    assert!(
        borrowed_per_carrier < legacy_per_carrier,
        "borrowed decode must copy measurably less than the legacy path"
    );
}

/// The FE handshake's RPDTAB forward path (BeRpdtab / MwRpdtab), with copy
/// accounting.
///
/// The pre-pipelining front end re-serialized the decoded table into every
/// handshake send (`with_lmon(&rpdtab)` — an O(tasks) copy per session,
/// counted by [`lmon_proto::frame::encode_bytes_copied`]). It now forwards
/// the engine-encoded [`lmon_proto::Bytes`] view, so a send stages only
/// header bytes no matter how large the job is. Asserted off the live
/// counter: the reuse path must stay within the zero-copy gather's
/// header-only floor.
fn bench_rpdtab_forward(c: &mut Criterion) {
    let table = synthetic_rpdtab(128, 8, "app");
    // What spawn_common stashes: the engine-encoded payload view.
    let encoded = LmonpMsg::of_type(MsgType::EngineRpdtab).with_lmon(&table).lmon;
    let table_len = encoded.len() as u64;

    let mut g = c.benchmark_group("rpdtab_forward");
    g.throughput(Throughput::Bytes(table_len));
    g.bench_function("reencode_per_send", |b| {
        let mut scratch = Vec::new();
        b.iter(|| {
            let msg = LmonpMsg::of_type(MsgType::BeRpdtab).with_lmon(black_box(&table));
            let frame = WireFrame::Carrier { session: 3, msg };
            let n: usize = frame.gather(&mut scratch).iter().map(|s| s.len()).sum();
            black_box(n)
        })
    });
    g.bench_function("reuse_bytes_view", |b| {
        let mut scratch = Vec::new();
        b.iter(|| {
            let msg =
                LmonpMsg::of_type(MsgType::BeRpdtab).with_lmon_payload(black_box(&encoded).clone());
            let frame = WireFrame::Carrier { session: 3, msg };
            let n: usize = frame.gather(&mut scratch).iter().map(|s| s.len()).sum();
            black_box(n)
        })
    });
    g.finish();

    // Copied-bytes-per-send, measured off the live counter.
    const SAMPLES: u64 = 1000;
    let mut scratch = Vec::new();
    let before = encode_bytes_copied();
    for _ in 0..SAMPLES {
        let msg = LmonpMsg::of_type(MsgType::BeRpdtab).with_lmon(&table);
        black_box(WireFrame::Carrier { session: 3, msg }.gather(&mut scratch).len());
    }
    let reencode_per_send = (encode_bytes_copied() - before) / SAMPLES;
    let before = encode_bytes_copied();
    for _ in 0..SAMPLES {
        let msg = LmonpMsg::of_type(MsgType::BeRpdtab).with_lmon_payload(encoded.clone());
        black_box(WireFrame::Carrier { session: 3, msg }.gather(&mut scratch).len());
    }
    let reuse_per_send = (encode_bytes_copied() - before) / SAMPLES;
    let header_only = (2 * HEADER_LEN) as u64;
    println!(
        "\nrpdtab forward (1024 tasks, {table_len}-byte table), bytes copied per send: \
         re-encode {reencode_per_send} | reuse {reuse_per_send} (header-only floor \
         {header_only})\n",
    );
    assert!(
        reuse_per_send <= header_only,
        "forwarding the encoded view must stage only header bytes: \
         {reuse_per_send} > {header_only}"
    );
    assert!(
        reencode_per_send >= table_len,
        "the legacy path re-serializes the whole table per send"
    );
}

fn bench_rpdtab(c: &mut Criterion) {
    let mut g = c.benchmark_group("rpdtab");
    for nodes in [16usize, 128, 1024] {
        let table = synthetic_rpdtab(nodes, 8, "app");
        let bytes = table.to_bytes();
        g.throughput(Throughput::Elements((nodes * 8) as u64));
        g.bench_with_input(BenchmarkId::new("encode", nodes), &table, |b, t| {
            b.iter(|| black_box(t).to_bytes())
        });
        g.bench_with_input(BenchmarkId::new("decode", nodes), &bytes, |b, bs| {
            b.iter(|| Rpdtab::from_bytes(black_box(bs)).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("hosts", nodes), &table, |b, t| {
            b.iter(|| black_box(t).hosts())
        });
    }
    g.finish();
}

fn bench_stat_tree(c: &mut Criterion) {
    let mut g = c.benchmark_group("stat_tree");
    for ranks in [64u32, 512, 4096] {
        g.throughput(Throughput::Elements(ranks as u64));
        g.bench_with_input(BenchmarkId::new("build", ranks), &ranks, |b, &n| {
            b.iter(|| {
                let mut t = PrefixTree::new();
                for r in 0..n {
                    t.insert(&synth_trace(r, n), r);
                }
                black_box(t)
            })
        });
        // The TBON merge filter over 8 partial trees.
        let parts: Vec<Vec<u8>> = (0..8)
            .map(|part| {
                let mut t = PrefixTree::new();
                let per = ranks / 8;
                for r in (part * per)..((part + 1) * per) {
                    t.insert(&synth_trace(r, ranks), r);
                }
                t.to_bytes()
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("merge_filter_8way", ranks), &parts, |b, p| {
            b.iter(|| merge_filter(black_box(p.clone())))
        });
    }
    g.finish();
}

fn bench_iccl(c: &mut Criterion) {
    let mut g = c.benchmark_group("iccl");
    g.sample_size(20);
    for (name, topo) in [("flat", Topology::Flat), ("binomial", Topology::Binomial)] {
        g.bench_function(BenchmarkId::new("gather16", name), |b| {
            b.iter(|| {
                let endpoints = ChannelFabric::mesh(16);
                let handles: Vec<_> = endpoints
                    .into_iter()
                    .map(|ep| {
                        std::thread::spawn(move || {
                            let mut comm = IcclComm::new(ep, topo);
                            comm.gather(vec![comm.rank() as u8; 64]).unwrap()
                        })
                    })
                    .collect();
                let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
                black_box(results)
            })
        });
    }
    g.finish();
    let _ = SAMPLE_TAG;
}

fn bench_dpcl_parse(c: &mut Criterion) {
    let mut g = c.benchmark_group("dpcl_parse");
    g.sample_size(10);
    for symbols in [10_000usize, 100_000] {
        let bin = SyntheticBinary::generate("srun", symbols, 3);
        g.throughput(Throughput::Elements(symbols as u64));
        g.bench_with_input(BenchmarkId::new("full_parse", symbols), &bin, |b, bin| {
            b.iter(|| parse_binary(black_box(bin)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_lmonp_codec,
    bench_mux_carrier_encode,
    bench_mux_carrier_decode,
    bench_rpdtab_forward,
    bench_rpdtab,
    bench_stat_tree,
    bench_iccl,
    bench_dpcl_parse
);
criterion_main!(benches);
