//! `federation_routing` — the federation layer, quantified (DESIGN.md
//! §13, ISSUE 10).
//!
//! Three per-group constants back the million-node scale story:
//!
//! * **group rtt** — one group's broadcast→gather wave over its live
//!   overlay (the same-run hardware normalizer);
//! * **publish+exchange** — a gateway's epoch-stamped [`GroupRoute`]
//!   publish plus one full routing exchange against the shared
//!   [`FederationRouter`], the only inter-group cost a federated launch
//!   adds;
//! * **group failover** — a whole-group hard kill followed by rebuild and
//!   re-attach under a bumped federation epoch, measured end to end on
//!   live overlays.
//!
//! The measured publish constant feeds
//! [`lmon_model::federation_projection`] for a 1024-group × 1024-node
//! federation — 1,048,576 daemons — and the projection block lands in
//! `BENCH_federation.json` next to the measurements, so the JSON is the
//! complete argument: measured constants in, million-node launch out.
//!
//! Results print as a table and are written to `BENCH_federation.json`
//! at the workspace root (CI uploads it). Quick mode: `LMON_BENCH_QUICK=1`.
//!
//! **Regression gate**: unless `LMON_BENCH_SKIP_GATE=1`, the run fails if
//! the primary spec's median failover latency regresses more than 30%
//! over the committed `BENCH_federation.json` (same-mode runs only) *and*
//! the hardware-neutral failover/group-rtt ratio regressed by more than
//! 30% too — a uniformly slower runner passes, a real federation-path
//! regression fails.
//!
//! [`GroupRoute`]: lmon_tbon::GroupRoute
//! [`FederationRouter`]: lmon_tbon::FederationRouter

use std::io::Write as _;
use std::time::{Duration, Instant};

use lmon_bench::{extract_json_number, print_table, Row};
use lmon_model::{federation_projection, CostParams};
use lmon_tbon::filter::FilterKind;
use lmon_tbon::spec::NodePos;
use lmon_tbon::{FederationRouter, FederationSpec, GroupRoute};
use lmon_testkit::LiveFederation;

/// Federation specs measured, primary (gated) spec first.
const SPECS: &[&str] = &["1x2x8 * 4g", "1x2x8 * 8g"];

/// The million-node projection: 1024 groups of 1024 daemons.
const PROJECTION_GROUPS: usize = 1024;
const PROJECTION_NODES_PER_GROUP: usize = 1024;
const PROJECTION_TASKS_PER_DAEMON: usize = 8;

/// First committed numbers for this subsystem (quick mode, the CI
/// configuration).
const BASELINE_PR: u32 = 10;
const BASELINE_SPEC: &str = "1x2x8 * 4g";
const BASELINE_FAILOVER_US: f64 = 412.0;
const BASELINE_GROUP_RTT_US: f64 = 120.0;

/// Gate: fail when the new median failover latency exceeds the committed
/// one by more than this factor (and the rtt-normalized ratio agrees).
const GATE_CEILING: f64 = 1.30;

fn quick_mode() -> bool {
    std::env::var("LMON_BENCH_QUICK").map(|v| v == "1").unwrap_or(false)
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    v[v.len() / 2]
}

struct FederationCycle {
    group_rtt_us: f64,
    failover_us: f64,
    bounds_held: bool,
}

/// One live-federation cycle: launch, probe one group (the rtt), hard-kill
/// a group and re-attach it (the failover), verify connection bounds.
fn one_federation_cycle(spec_str: &str) -> FederationCycle {
    let spec = FederationSpec::parse(spec_str).expect("valid spec");
    let leaves = spec.group_spec().leaf_count() as usize;
    let victim = spec.group_count() - 1;
    let mut fed = LiveFederation::launch_echo(spec_str);

    let t0 = Instant::now();
    let stream = fed.front(0).open_stream(FilterKind::Concat).expect("stream");
    fed.front(0).broadcast(stream, 1, vec![]).expect("broadcast");
    let pkt = fed.front(0).gather(stream, 1, Duration::from_secs(20)).expect("gather");
    let group_rtt_us = t0.elapsed().as_secs_f64() * 1e6;
    assert_eq!(pkt.payload.len(), leaves);

    let t0 = Instant::now();
    let epoch = fed.fail_group(victim);
    fed.reattach_group(victim);
    let failover_us = t0.elapsed().as_secs_f64() * 1e6;
    assert_eq!(fed.router().epoch(), epoch);
    assert_eq!(fed.router().live_groups().len(), spec.group_count() as usize);

    let bounds_held = fed.accounts().iter().all(|a| a.links <= a.bound);
    fed.shutdown();
    FederationCycle { group_rtt_us, failover_us, bounds_held }
}

/// Median cost of one gateway publish + full routing exchange against a
/// router already holding every group's entry (pure in-memory: this is
/// the constant the projection multiplies by the group count).
fn publish_exchange_us(groups: u32, samples: usize) -> f64 {
    let router = FederationRouter::new();
    let entry = |group: u32, epoch: u64| GroupRoute {
        group,
        epoch,
        overlay_epoch: 0,
        gateway: NodePos { level: 1, index: 0 },
        leaves: 8,
        alive: true,
    };
    for g in 0..groups {
        assert!(router.publish(entry(g, router.epoch())));
    }
    let mut out = Vec::with_capacity(samples);
    for i in 0..samples {
        let g = i as u32 % groups;
        let t0 = Instant::now();
        assert!(router.publish(entry(g, router.epoch())));
        let seen = router.exchange(g);
        out.push(t0.elapsed().as_secs_f64() * 1e6);
        assert_eq!(seen.len(), groups as usize - 1);
    }
    median(out)
}

#[derive(Debug)]
struct SpecResult {
    spec: String,
    iterations: usize,
    groups: u32,
    group_rtt_us: f64,
    publish_us: f64,
    failover_us: f64,
    bounds_held: usize,
}

fn measure(spec_str: &str, iters: usize) -> SpecResult {
    let spec = FederationSpec::parse(spec_str).expect("valid spec");
    let cycles: Vec<FederationCycle> = (0..iters).map(|_| one_federation_cycle(spec_str)).collect();
    SpecResult {
        spec: spec_str.to_string(),
        iterations: iters,
        groups: spec.group_count(),
        group_rtt_us: median(cycles.iter().map(|c| c.group_rtt_us).collect()),
        publish_us: publish_exchange_us(spec.group_count(), 1000),
        failover_us: median(cycles.iter().map(|c| c.failover_us).collect()),
        bounds_held: cycles.iter().filter(|c| c.bounds_held).count(),
    }
}

fn fmt_us(v: f64) -> String {
    format!("{v:.0}us")
}

fn main() {
    let quick = quick_mode();
    let iters = if quick { 3 } else { 10 };

    // Read the committed artifact *before* overwriting; the gate only arms
    // for a same-mode artifact (quick and full runs are not comparable).
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_federation.json");
    let committed = std::fs::read_to_string(&out).ok().and_then(|json| {
        let committed_quick = json.contains("\"quick\": true");
        if committed_quick != quick {
            return None;
        }
        let at = json.find(&format!("\"spec\": \"{}\"", SPECS[0]))?;
        let tail = &json[at..];
        let failover = extract_json_number(tail, "\"failover_us\":")?;
        let rtt = extract_json_number(tail, "\"group_rtt_us\":")?;
        Some((failover, rtt))
    });

    let results: Vec<SpecResult> = SPECS.iter().map(|s| measure(s, iters)).collect();

    let rows: Vec<Row> = results
        .iter()
        .map(|r| Row {
            x: r.spec.clone(),
            values: vec![
                fmt_us(r.group_rtt_us),
                format!("{:.2}us", r.publish_us),
                fmt_us(r.failover_us),
                format!("{}/{}", r.bounds_held, r.iterations),
            ],
        })
        .collect();
    print_table(
        "federated overlays (per-group constants; hard group kill + re-attach)",
        "federation spec",
        &["group rtt", "publish+exchange", "failover", "bounds held"],
        &rows,
    );
    println!(
        "baseline (PR {BASELINE_PR}, {BASELINE_SPEC}): failover {BASELINE_FAILOVER_US:.0}us over \
         a {BASELINE_GROUP_RTT_US:.0}us group rtt"
    );

    // Acceptance: every cycle held every node inside its connection bound.
    for r in &results {
        assert_eq!(
            r.bounds_held, r.iterations,
            "{}: a failover cycle pushed a node past its connection bound",
            r.spec
        );
    }

    // The scale story: project a million-node federated launch from the
    // measured per-group routing constant.
    let primary = &results[0];
    let proj = federation_projection(
        &CostParams::default(),
        PROJECTION_GROUPS,
        PROJECTION_NODES_PER_GROUP,
        PROJECTION_TASKS_PER_DAEMON,
        primary.publish_us * 1e-6,
    );
    println!(
        "projection: {} nodes as {}x{} federate in {:.2}s (one group {:.2}s + routing {:.3}s); \
         flat single-FE launch of the same nodes: {:.0}s",
        proj.total_nodes,
        proj.groups,
        proj.nodes_per_group,
        proj.total_s,
        proj.group_launch_s,
        proj.routing_exchange_s,
        proj.flat_total_s
    );
    assert!(
        proj.total_s < proj.flat_total_s / 10.0,
        "federation must beat the flat launch by >10x at a million nodes"
    );

    let specs_json = results
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "    {{\"spec\": \"{}\", \"iterations\": {}, \"groups\": {}, ",
                    "\"group_rtt_us\": {:.0}, \"publish_us\": {:.2}, \"failover_us\": {:.0}, ",
                    "\"bounds_held\": {}}}"
                ),
                r.spec,
                r.iterations,
                r.groups,
                r.group_rtt_us,
                r.publish_us,
                r.failover_us,
                r.bounds_held
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"quick\": {quick},\n",
            "  \"specs\": [\n",
            "{specs}\n",
            "  ],\n",
            "  \"projection\": {{\n",
            "    \"groups\": {pgroups},\n",
            "    \"nodes_per_group\": {pnodes},\n",
            "    \"total_nodes\": {ptotal},\n",
            "    \"publish_us_measured\": {ppub:.2},\n",
            "    \"group_launch_s\": {pgl:.3},\n",
            "    \"routing_exchange_s\": {prx:.4},\n",
            "    \"federated_total_s\": {pfed:.3},\n",
            "    \"flat_total_s\": {pflat:.1}\n",
            "  }},\n",
            "  \"baseline\": {{\n",
            "    \"pr\": {bpr},\n",
            "    \"spec\": \"{bspec}\",\n",
            "    \"failover_us\": {bfail:.0},\n",
            "    \"group_rtt_us\": {brtt:.0}\n",
            "  }}\n",
            "}}\n"
        ),
        quick = quick,
        specs = specs_json,
        pgroups = proj.groups,
        pnodes = proj.nodes_per_group,
        ptotal = proj.total_nodes,
        ppub = primary.publish_us,
        pgl = proj.group_launch_s,
        prx = proj.routing_exchange_s,
        pfed = proj.total_s,
        pflat = proj.flat_total_s,
        bpr = BASELINE_PR,
        bspec = BASELINE_SPEC,
        bfail = BASELINE_FAILOVER_US,
        brtt = BASELINE_GROUP_RTT_US,
    );
    let mut f = std::fs::File::create(&out).expect("create BENCH_federation.json");
    f.write_all(json.as_bytes()).expect("write BENCH_federation.json");
    println!("\nwrote {}", out.display());

    // Regression gate, two-signal: absolute failover latency AND the
    // same-run failover/group-rtt ratio must both regress >30% to fail,
    // so a uniformly slower runner shifts both and passes.
    let skip_gate = std::env::var("LMON_BENCH_SKIP_GATE").map(|v| v == "1").unwrap_or(false);
    match committed {
        Some((committed_failover, committed_rtt)) if !skip_gate => {
            let ceiling = committed_failover * GATE_CEILING;
            let committed_ratio = committed_failover / committed_rtt.max(1.0);
            let ratio = primary.failover_us / primary.group_rtt_us.max(1.0);
            let ratio_ceiling = committed_ratio * GATE_CEILING;
            if primary.failover_us > ceiling && ratio > ratio_ceiling {
                eprintln!(
                    "REGRESSION GATE FAILED: failover_us {:.0} is more than 30% above the \
                     committed {committed_failover:.0} (ceiling {ceiling:.0}) AND the \
                     failover/group-rtt ratio {ratio:.2} exceeds {ratio_ceiling:.2} (committed \
                     {committed_ratio:.2}), so this is not just a slower machine. Set \
                     LMON_BENCH_SKIP_GATE=1 to skip on noisy runners.",
                    primary.failover_us
                );
                std::process::exit(1);
            }
            println!(
                "regression gate passed: {:.0}us (ceiling {ceiling:.0}, committed \
                 {committed_failover:.0}); failover/rtt ratio {ratio:.2} (committed \
                 {committed_ratio:.2})",
                primary.failover_us
            );
        }
        Some(_) => println!("regression gate skipped (LMON_BENCH_SKIP_GATE=1)"),
        None => println!(
            "regression gate skipped (no committed BENCH_federation.json in this run's mode)"
        ),
    }
}
