//! Figure 5: Jobsnap performance — total time vs `init→attachAndSpawn`,
//! 16→1024 tool daemons (8 MPI tasks per daemon; 8192 tasks at the top).
//!
//! Two layers: the paper-scale simulation (the figure itself) and a
//! real-execution validation at laptop scale — the actual Jobsnap tool
//! running against the virtual cluster, confirming the structural claim
//! that launch dominates total.

use std::sync::Arc;

use lmon_bench::{paper_ref, print_table, s3, Row, PAPER_FIG5_LAUNCH_1024, PAPER_FIG5_TOTAL};
use lmon_cluster::config::ClusterConfig;
use lmon_cluster::VirtualCluster;
use lmon_core::fe::LmonFrontEnd;
use lmon_model::scenario::simulate_jobsnap;
use lmon_model::CostParams;
use lmon_rm::api::{JobSpec, ResourceManager};
use lmon_rm::SlurmRm;
use lmon_tools::jobsnap::run_jobsnap;

fn main() {
    let p = CostParams::default();
    let daemon_counts = [16usize, 32, 64, 128, 256, 512, 768, 1024];

    let mut rows = Vec::new();
    for &d in &daemon_counts {
        let (launch, total) = simulate_jobsnap(&p, d, 8);
        let paper = paper_ref(PAPER_FIG5_TOTAL, d)
            .map(|v| format!("≈{v:.2}s"))
            .unwrap_or_else(|| "-".into());
        rows.push(Row {
            x: format!("{d} ({} tasks)", d * 8),
            values: vec![s3(total), s3(launch), paper],
        });
    }
    print_table(
        "Figure 5: Jobsnap performance (simulated at paper scale)",
        "daemons",
        &["total", "init→attachAndSpawn", "paper total"],
        &rows,
    );

    let (l1024, t1024) = simulate_jobsnap(&p, 1024, 8);
    println!(
        "\npaper @1024: total 2.92 s, LaunchMON 2.76 s | reproduced: total {}, LaunchMON {}",
        s3(t1024),
        s3(l1024)
    );

    // --- real-execution validation at laptop scale --------------------------
    println!("\n--- real Jobsnap runs on the virtual cluster (threads, wall-clock) ---");
    let mut rows = Vec::new();
    for nodes in [4usize, 16, 32] {
        let cluster = VirtualCluster::new(ClusterConfig::with_nodes(nodes));
        let rm: Arc<dyn ResourceManager> = Arc::new(SlurmRm::new(cluster));
        let job = rm.launch_job(&JobSpec::new("mpi_app", nodes, 8), false).expect("job");
        let fe = LmonFrontEnd::init(rm).expect("fe");
        let report = run_jobsnap(&fe, job.launcher_pid).expect("jobsnap");
        assert_eq!(report.lines.len(), nodes * 8, "one line per task");
        rows.push(Row {
            x: format!("{nodes}"),
            values: vec![
                format!("{:?}", report.total),
                format!("{:?}", report.launch),
                format!("{}", report.lines.len()),
            ],
        });
        fe.shutdown().expect("shutdown");
    }
    print_table(
        "real execution (functional validation)",
        "daemons",
        &["total", "init→attachAndSpawn", "task lines"],
        &rows,
    );
    let _ = PAPER_FIG5_LAUNCH_1024;
    println!("\nfig5_jobsnap: done");
}
