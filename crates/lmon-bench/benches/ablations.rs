//! Ablation studies of the design choices DESIGN.md calls out:
//!
//! 1. **ICCL topology** — flat vs binomial vs k-ary collective schedules
//!    (per-round serialization at the busiest rank).
//! 2. **RM debug-event profile** — the §4 observation that a well-designed
//!    RM emits O(1) debugger events: tracing cost under constant/per-node/
//!    per-task profiles.
//! 3. **Piggybacking** — tool data bundled with the handshake vs separate
//!    round trips after ready (LMONP's design point, §3.5).
//! 4. **Sequential vs tree rsh** — the §2 remark that some ad hoc tools use
//!    tree protocols; better, but still no RM integration and still
//!    fd-bound at the root fan-out.
//! 5. **BlueGene/L RM** — same engine, inflated T(job)/T(daemon) (§4).

use lmon_bench::{print_table, s3, Row};
use lmon_iccl::Topology;
use lmon_model::predict::{launch_breakdown, launch_breakdown_bluegene};
use lmon_model::CostParams;
use lmon_sim::net::LinkSpec;

fn main() {
    let p = CostParams::default();

    // --- 1. ICCL topology: broadcast completion time ------------------------
    // Model: per round, the busiest sender serializes `fanout` messages;
    // rounds = tree depth. Uses the same link spec as the launch scenario.
    let link = LinkSpec::infiniband_tcp();
    let per_msg = link.send_overhead + link.transmit_time(512) + link.latency;
    let mut rows = Vec::new();
    for n in [16u32, 64, 256, 1024, 4096] {
        let mut values = Vec::new();
        for topo in [Topology::Flat, Topology::Binomial, Topology::KAry(8)] {
            let rounds = topo.depth(n) as f64;
            let fanout = topo.max_fanout(n) as f64;
            // Busiest rank each round sends up to `fanout` messages.
            let t = rounds * fanout * per_msg.as_secs_f64();
            values.push(s3(t));
        }
        rows.push(Row { x: format!("{n}"), values });
    }
    print_table(
        "Ablation 1: ICCL broadcast schedule cost by topology (512 B payload)",
        "daemons",
        &["flat", "binomial", "8-ary"],
        &rows,
    );

    // --- 2. RM debug-event profiles -----------------------------------------
    let handler_cost = p.tracing_cost / 3.0; // per-event cost, from the fixed profile
    let mut rows = Vec::new();
    for daemons in [16usize, 128, 1024] {
        let tasks = daemons * 8;
        rows.push(Row {
            x: format!("{daemons}"),
            values: vec![
                s3(3.0 * handler_cost),
                s3(daemons as f64 * handler_cost),
                s3(tasks as f64 * handler_cost),
            ],
        });
    }
    print_table(
        "Ablation 2: engine tracing cost by RM debug-event profile",
        "daemons",
        &["constant (fixed SLURM)", "per-node", "per-task (pre-fix)"],
        &rows,
    );
    println!("(the per-task column is why the paper drove the SLURM fix)");

    // --- 3. Piggybacking vs separate round trips ------------------------------
    let mut rows = Vec::new();
    for round_trips in [1usize, 2, 4, 8] {
        let rtt = 2.0 * link.latency.as_secs_f64() + 2.0 * link.send_overhead.as_secs_f64();
        let piggy = 0.0; // rides the handshake: no extra round trips
        let separate = round_trips as f64 * rtt;
        rows.push(Row { x: format!("{round_trips}"), values: vec![s3(piggy), s3(separate)] });
    }
    print_table(
        "Ablation 3: tool bootstrap data — piggybacked vs separate exchanges",
        "exchanges",
        &["piggybacked", "separate"],
        &rows,
    );

    // --- 4. rsh: sequential vs tree -------------------------------------------
    let mut rows = Vec::new();
    for daemons in [64usize, 256, 504, 512, 1024] {
        let seq = if daemons <= p.rsh_fd_capacity {
            s3(p.rsh_connect_base * daemons as f64
                + p.rsh_connect_growth * (daemons * daemons) as f64 / 2.0)
        } else {
            "FAILS (fd)".to_string()
        };
        // Tree of fanout 16: FE pays 16 serial connects; each level
        // parallelizes across already-launched daemons.
        let fanout = 16usize;
        let levels = (daemons.max(1) as f64).log(fanout as f64).ceil().max(1.0);
        let tree = s3(levels * fanout as f64 * p.rsh_connect_base);
        rows.push(Row { x: format!("{daemons}"), values: vec![seq, tree] });
    }
    print_table(
        "Ablation 4: ad hoc launcher — sequential vs fanout-16 tree rsh",
        "daemons",
        &["sequential", "tree"],
        &rows,
    );
    println!("(tree rsh scales far better, yet remains RM-blind: no RPDTAB, no");
    println!(" co-location guarantees, and restricted MPP nodes have no rshd at all)");

    // --- 5. BlueGene/L cost profile --------------------------------------------
    let mut rows = Vec::new();
    for daemons in [16usize, 64, 128] {
        let linux = launch_breakdown(&p, daemons, 8);
        let bg = launch_breakdown_bluegene(&p, daemons, 8);
        rows.push(Row {
            x: format!("{daemons}"),
            values: vec![
                s3(linux.total()),
                s3(bg.total()),
                s3(bg.t_job + bg.t_daemon),
                format!("{:.1}%", bg.launchmon_share() * 100.0),
            ],
        });
    }
    print_table(
        "Ablation 5: Linux/SLURM vs BlueGene/mpirun (same engine)",
        "daemons",
        &["slurm total", "bg total", "bg T(job)+T(daemon)", "bg LMON share"],
        &rows,
    );
    println!("(LaunchMON's own costs are unchanged; the RM dominates — §4's BG/L finding)");
    println!("\nablations: done");
}
