//! Figure 6: STAT start-up — "MRNet vs LaunchMON launch and connect time",
//! 1-deep topology, 4→512 tool daemons (one per node, 8 tasks each).
//!
//! The ad hoc curve grows linearly with a sequential rsh per daemon and
//! *fails outright* at 512 (front-end fd exhaustion at 504 live sessions);
//! the LaunchMON curve stays in single-digit seconds. Real execution at
//! laptop scale validates that both paths produce identical analysis
//! results and that the fd failure really happens.

use std::sync::Arc;

use lmon_bench::{paper_ref, print_table, ratio, s3, Row, PAPER_FIG6_LMON, PAPER_FIG6_MRNET};
use lmon_cluster::config::{ClusterConfig, RshConfig};
use lmon_cluster::VirtualCluster;
use lmon_core::fe::LmonFrontEnd;
use lmon_model::scenario::{simulate_stat_adhoc, simulate_stat_launchmon, AdhocResult};
use lmon_model::CostParams;
use lmon_rm::api::{JobSpec, ResourceManager};
use lmon_rm::SlurmRm;
use lmon_tools::stat::{run_stat_adhoc, run_stat_launchmon};

fn main() {
    let p = CostParams::default();
    let node_counts = [4usize, 16, 64, 128, 256, 512];

    let mut rows = Vec::new();
    for &n in &node_counts {
        let adhoc = simulate_stat_adhoc(&p, n);
        let (lmon, handshake) = simulate_stat_launchmon(&p, n, 8);
        let adhoc_str = match adhoc {
            AdhocResult::Completed { seconds, .. } => s3(seconds),
            AdhocResult::ForkFailed { at_daemon, wasted_seconds } => {
                format!("FAILS (fork #{at_daemon}, {:.0}s wasted)", wasted_seconds)
            }
        };
        let speedup = match adhoc {
            AdhocResult::Completed { seconds, .. } => ratio(seconds, lmon),
            AdhocResult::ForkFailed { .. } => "∞".into(),
        };
        let paper_m = paper_ref(PAPER_FIG6_MRNET, n)
            .map(|v| format!("{v}s"))
            .unwrap_or_else(|| if n == 512 { "FAILS".into() } else { "-".into() });
        let paper_l =
            paper_ref(PAPER_FIG6_LMON, n).map(|v| format!("{v}s")).unwrap_or_else(|| "-".into());
        rows.push(Row {
            x: format!("{n}"),
            values: vec![adhoc_str, s3(lmon), s3(handshake), speedup, paper_m, paper_l],
        });
    }
    print_table(
        "Figure 6: STAT start-up, MRNet(rsh) vs LaunchMON (1-deep, simulated)",
        "daemons",
        &["MRNet 1-deep", "LaunchMON 1-deep", "mrnet hs", "speedup", "paper MRNet", "paper LMON"],
        &rows,
    );

    println!("\npaper @256: 60.8 s vs 3.57 s (>17x, 0.77 s of which is MRNet handshake)");
    println!("paper @512: ad hoc consistently fails forking rsh; LaunchMON: 5.6 s");

    // --- real execution at laptop scale -------------------------------------
    println!("\n--- real STAT runs on the virtual cluster ---");
    let mut rows = Vec::new();
    for nodes in [4usize, 8, 16] {
        let cluster = VirtualCluster::new(ClusterConfig::with_nodes(nodes));
        let rm: Arc<dyn ResourceManager> = Arc::new(SlurmRm::new(cluster.clone()));
        let job = rm.launch_job(&JobSpec::new("mpi_app", nodes, 8), false).expect("job");
        std::thread::sleep(std::time::Duration::from_millis(20));

        let fe = LmonFrontEnd::init(rm).expect("fe");
        let lm = run_stat_launchmon(&fe, job.launcher_pid, nodes as u32).expect("lm stat");
        let hosts: Vec<String> = (0..nodes).map(|i| cluster.config().hostname(i)).collect();
        let adhoc = run_stat_adhoc(&cluster, &hosts, (nodes * 8) as u32).expect("adhoc stat");
        assert_eq!(lm.tree, adhoc.tree, "both startups yield identical trees");
        rows.push(Row {
            x: format!("{nodes}"),
            values: vec![
                format!("{:?}", adhoc.connect_time),
                format!("{:?}", lm.connect_time),
                format!("{}", adhoc.rsh_connects),
                format!("{}", lm.rsh_connects),
                format!("{}", lm.classes.len()),
            ],
        });
        fe.shutdown().expect("shutdown");
    }
    print_table(
        "real execution (identical equivalence classes asserted)",
        "daemons",
        &["adhoc connect", "lmon connect", "adhoc rsh", "lmon rsh", "classes"],
        &rows,
    );

    // --- the 512-failure, demonstrated for real with a scaled-down budget ---
    let mut cfg = ClusterConfig::with_nodes(12);
    cfg.rsh =
        RshConfig { fds_per_session: 2, fe_fd_limit: 20, fe_base_fds: 4, ..Default::default() };
    let cluster = VirtualCluster::new(cfg);
    let hosts: Vec<String> = (0..12).map(|i| cluster.config().hostname(i)).collect();
    match run_stat_adhoc(&cluster, &hosts, 96) {
        Err(e) => println!("\nreal fd-exhaustion demo (capacity 8 sessions, 12 daemons): {e}"),
        Ok(_) => println!("\nERROR: expected the scaled-down ad hoc launch to fail"),
    }
    println!("\nfig6_stat_startup: done");
}
