//! `transport_latency` — the event-driven transport core, quantified.
//!
//! Measurements backing the ISSUE 3 and ISSUE 4 acceptance criteria:
//!
//! 1. **recv wakeup latency**: how long a parked consumer takes to observe
//!    a message, comparing the workspace's previous transport behavior —
//!    a `try_recv` sweep with a 200 µs park between sweeps, exactly what
//!    the vendored `select!` did before the condvar waker — against the
//!    condvar-driven `recv()` and the reworked event-driven `select!`.
//! 2. **mux fan-in throughput**: aggregate messages/second across K logical
//!    sessions multiplexed over *one* physical channel, against K dedicated
//!    channels (the pre-mux shape that cost K fds). The headline mux number
//!    runs the adaptive batch controller (the default — no hand-tuned
//!    knob); a fixed-batch sweep (1 = pre-batching wire shape, 8, 64) shows
//!    what any static setting would have bought. Fan-in is cheap enough
//!    that both quick- and full-mode message counts are measured every run,
//!    so the committed artifact carries the mux/dedicated ratio for both.
//!
//! Results print as tables and are written to `BENCH_transport.json` at
//! the workspace root (CI uploads it as an artifact); the JSON carries a
//! `baseline` block (the rates PR 6 started from) so the trajectory is
//! self-describing. Quick mode for CI: set `LMON_BENCH_QUICK=1`.
//!
//! **Regression gates**: unless `LMON_BENCH_SKIP_GATE=1` (for noisy
//! runners), the run fails if (a) the new `mux_msgs_per_s` drops more than
//! 30% below the value in the committed `BENCH_transport.json`, or (b) the
//! adaptive-mode rate falls more than 10% below the best fixed-batch rate
//! measured in the same run — the controller must not lose to any static
//! setting it replaced.

use std::io::Write as _;
use std::time::{Duration, Instant};

use lmon_bench::{extract_json_number as extract_number, print_table, Row};
use lmon_proto::header::MsgType;
use lmon_proto::msg::LmonpMsg;
use lmon_proto::mux::SessionMux;
use lmon_proto::transport::{LocalChannel, MsgChannel};

/// The park interval the old polled `select!` used between sweeps.
const OLD_POLL_PARK: Duration = Duration::from_micros(200);

/// The rates PR 6 started from (PR 5's committed quick-mode artifact:
/// fixed batch-64 flushing, copying inbound decode, serialized engine
/// exchanges): the baseline the JSON artifact carries so any later reader
/// can see the trajectory without digging through git history.
const BASELINE_PR: u32 = 6;
const BASELINE_MUX_MSGS_PER_S: f64 = 1_332_027.0;
const BASELINE_DEDICATED_MSGS_PER_S: f64 = 1_523_399.0;

/// Regression gate: fail when the new mux rate drops below this fraction
/// of the committed one.
const GATE_FLOOR: f64 = 0.70;

/// Adaptive gate: the adaptive controller must stay within this fraction
/// of the best fixed-batch rate measured in the same run.
const ADAPTIVE_GATE_FLOOR: f64 = 0.90;

fn quick_mode() -> bool {
    std::env::var("LMON_BENCH_QUICK").map(|v| v == "1").unwrap_or(false)
}

#[derive(Debug, Clone, Copy)]
struct LatencyStats {
    median_us: f64,
    p90_us: f64,
    mean_us: f64,
}

fn stats(mut samples: Vec<f64>) -> LatencyStats {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = samples.len();
    LatencyStats {
        median_us: samples[n / 2],
        p90_us: samples[(n * 9 / 10).min(n - 1)],
        mean_us: samples.iter().sum::<f64>() / n as f64,
    }
}

/// One wakeup-latency run: a producer stamps `Instant::now()` into each
/// message; the consumer (already parked, the producer paces itself to
/// guarantee that) reports how stale the stamp is on arrival.
fn wakeup_latency(
    iters: usize,
    consume: impl FnOnce(crossbeam_channel::Receiver<Instant>) -> Vec<f64> + Send + 'static,
) -> LatencyStats {
    let (tx, rx) = crossbeam_channel::unbounded::<Instant>();
    let consumer = std::thread::spawn(move || consume(rx));
    for i in 0..iters {
        // Give the consumer time to drain and park again; the spacing is
        // varied (co-prime stride) so sends cannot phase-lock with a polled
        // consumer's park boundaries and flatter its average.
        let jitter = (i as u64 * 97) % 391;
        std::thread::sleep(Duration::from_micros(530 + jitter));
        tx.send(Instant::now()).unwrap();
    }
    drop(tx);
    stats(consumer.join().expect("consumer"))
}

/// Baseline: the pre-refactor behavior — poll `try_recv`, park 200 µs
/// between sweeps (what the vendored `select!` did on every miss).
fn polled_baseline(iters: usize) -> LatencyStats {
    wakeup_latency(iters, |rx| {
        let mut out = Vec::new();
        loop {
            match rx.try_recv() {
                Ok(stamp) => out.push(stamp.elapsed().as_secs_f64() * 1e6),
                Err(crossbeam_channel::TryRecvError::Empty) => {
                    std::thread::sleep(OLD_POLL_PARK);
                }
                Err(crossbeam_channel::TryRecvError::Disconnected) => return out,
            }
        }
    })
}

/// The condvar path: a plain blocking `recv()`.
fn condvar_recv(iters: usize) -> LatencyStats {
    wakeup_latency(iters, |rx| {
        let mut out = Vec::new();
        while let Ok(stamp) = rx.recv() {
            out.push(stamp.elapsed().as_secs_f64() * 1e6);
        }
        out
    })
}

/// The reworked `select!`: event-driven multi-channel wait (one silent
/// second arm, as in the comm-daemon loops).
fn select_recv(iters: usize) -> LatencyStats {
    wakeup_latency(iters, |rx| {
        let (_silent_tx, silent_rx) = crossbeam_channel::unbounded::<Instant>();
        let mut out = Vec::new();
        loop {
            let done = crossbeam_channel::select! {
                recv(rx) -> msg => match msg {
                    Ok(stamp) => {
                        out.push(stamp.elapsed().as_secs_f64() * 1e6);
                        false
                    }
                    Err(_) => true,
                },
                recv(silent_rx) -> _msg => unreachable!("silent arm never fires"),
            };
            if done {
                return out;
            }
        }
    })
}

fn usr_msg(tag: u16) -> LmonpMsg {
    LmonpMsg::of_type(MsgType::BeUsrData).with_tag(tag).with_usr_payload(vec![0xA5; 64])
}

/// Warm-up messages per session before the timed window opens: enough for
/// every thread to be running and the adaptive controller to ramp, so both
/// fan-in shapes report steady-state rates rather than spawn transients.
fn fanin_warmup(per_session: usize) -> usize {
    (per_session / 4).min(1000)
}

/// Fan-in throughput of K sessions over one mux link. `Some(b)` pins the
/// send-side coalescing bound to `b` frames (1 disables batching); `None`
/// runs the adaptive controller, the deployment default.
///
/// Steady-state: each sender pushes a warm-up burst, all senders and the
/// clock rendezvous on a barrier, and only the following `per_session`
/// messages per session are timed. [`dedicated_fanin`] warms up the same
/// way, so the comparison stays symmetric.
fn mux_fanin_batched(sessions: u16, per_session: usize, max_batch: Option<usize>) -> f64 {
    let (near, far) = SessionMux::pair();
    match max_batch {
        Some(b) => near.set_max_batch_frames(b),
        None => near.set_adaptive_batching(),
    }
    let warmup = fanin_warmup(per_session);
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(sessions as usize));
    let receivers: Vec<_> = (0..sessions)
        .map(|i| {
            let ep = far.open(i).unwrap();
            std::thread::spawn(move || {
                for _ in 0..warmup + per_session {
                    ep.recv().unwrap();
                }
                Instant::now()
            })
        })
        .collect();
    let senders: Vec<_> = (0..sessions)
        .map(|i| {
            let ep = near.open(i).unwrap();
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                for _ in 0..warmup {
                    ep.send(usr_msg(i)).unwrap();
                }
                barrier.wait();
                let start = Instant::now();
                for _ in 0..per_session {
                    ep.send(usr_msg(i)).unwrap();
                }
                start
            })
        })
        .collect();
    // The window is stamped inside the workers (first sender's post-barrier
    // start, last receiver's finish): the main thread may not get scheduled
    // between barrier release and workload completion on small machines, so
    // it cannot time the window itself.
    let start = senders.into_iter().map(|h| h.join().unwrap()).min().expect("senders");
    let end = receivers.into_iter().map(|h| h.join().unwrap()).max().expect("receivers");
    (sessions as usize * per_session) as f64 / (end - start).as_secs_f64()
}

/// Fan-in throughput with the adaptive controller (the default policy).
fn mux_fanin_adaptive(sessions: u16, per_session: usize) -> f64 {
    mux_fanin_batched(sessions, per_session, None)
}

/// The pre-mux shape: K dedicated channels (K fds in a real deployment).
/// Warmed up and timed exactly like [`mux_fanin_batched`].
fn dedicated_fanin(sessions: u16, per_session: usize) -> f64 {
    let pairs: Vec<_> = (0..sessions).map(|_| LocalChannel::pair()).collect();
    let warmup = fanin_warmup(per_session);
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(sessions as usize));
    let mut receivers = Vec::new();
    let mut chans = Vec::new();
    for (a, b) in pairs {
        chans.push(a);
        receivers.push(std::thread::spawn(move || {
            for _ in 0..warmup + per_session {
                b.recv().unwrap();
            }
            Instant::now()
        }));
    }
    let senders: Vec<_> = chans
        .into_iter()
        .enumerate()
        .map(|(i, a)| {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                for _ in 0..warmup {
                    a.send(usr_msg(i as u16)).unwrap();
                }
                barrier.wait();
                let start = Instant::now();
                for _ in 0..per_session {
                    a.send(usr_msg(i as u16)).unwrap();
                }
                start
            })
        })
        .collect();
    let start = senders.into_iter().map(|h| h.join().unwrap()).min().expect("senders");
    let end = receivers.into_iter().map(|h| h.join().unwrap()).max().expect("receivers");
    (sessions as usize * per_session) as f64 / (end - start).as_secs_f64()
}

fn fmt_us(v: f64) -> String {
    format!("{v:.1}us")
}

fn main() {
    let quick = quick_mode();
    let iters = if quick { 300 } else { 2000 };
    let sessions: u16 = 32;
    let per_session = if quick { 500 } else { 4000 };

    let polled = polled_baseline(iters);
    let condvar = condvar_recv(iters);
    let select = select_recv(iters);
    let speedup = polled.median_us / condvar.median_us;
    let select_speedup = polled.median_us / select.median_us;

    print_table(
        "recv wakeup latency (parked consumer, µs)",
        "path",
        &["median", "p90", "mean"],
        &[
            Row {
                x: "polled (200us park)".into(),
                values: vec![
                    fmt_us(polled.median_us),
                    fmt_us(polled.p90_us),
                    fmt_us(polled.mean_us),
                ],
            },
            Row {
                x: "condvar recv".into(),
                values: vec![
                    fmt_us(condvar.median_us),
                    fmt_us(condvar.p90_us),
                    fmt_us(condvar.mean_us),
                ],
            },
            Row {
                x: "event select!".into(),
                values: vec![
                    fmt_us(select.median_us),
                    fmt_us(select.p90_us),
                    fmt_us(select.mean_us),
                ],
            },
        ],
    );
    println!(
        "wakeup speedup vs polled baseline: recv {speedup:.1}x, select {select_speedup:.1}x \
         (acceptance floor: 10x)"
    );

    // The committed artifact is the regression reference; read it *before*
    // overwriting. Quick- and full-mode rates are not comparable (different
    // message counts), so the gate only arms when the committed artifact
    // was produced in the same mode as this run.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_transport.json");
    let committed = std::fs::read_to_string(&out).ok().and_then(|json| {
        let committed_quick = json.contains("\"quick\": true");
        if committed_quick != quick {
            return None;
        }
        let mux = extract_number(&json, "\"mux_msgs_per_s\":")?;
        let dedicated = extract_number(&json, "\"dedicated_msgs_per_s\":")?;
        Some((mux, dedicated))
    });

    // Throughput is reported best-of-N: on small/shared runners a single
    // rep is hostage to scheduling storms, and the best rep is the closest
    // observable to the machine's actual capability for every shape alike.
    let reps = 3;
    let best_of = |f: &dyn Fn() -> f64| (0..reps).map(|_| f()).fold(f64::MIN, f64::max);
    // Batch sweep: 1 (no coalescing — the pre-batching wire shape), 8, 64.
    let batch_sweep: Vec<(usize, f64)> = [1usize, 8, 64]
        .iter()
        .map(|&b| (b, best_of(&|| mux_fanin_batched(sessions, per_session, Some(b)))))
        .collect();
    // Fan-in is cheap (sub-second even at full message counts), so measure
    // both modes' message counts every run: the committed artifact then
    // shows the adaptive mux/dedicated ratio for quick AND full mode.
    const FANIN_QUICK: usize = 500;
    const FANIN_FULL: usize = 4000;
    let adaptive_quick = best_of(&|| mux_fanin_adaptive(sessions, FANIN_QUICK));
    let dedicated_quick = best_of(&|| dedicated_fanin(sessions, FANIN_QUICK));
    let adaptive_full = best_of(&|| mux_fanin_adaptive(sessions, FANIN_FULL));
    let dedicated_full = best_of(&|| dedicated_fanin(sessions, FANIN_FULL));
    let (mux_rate, dedicated_rate) =
        if quick { (adaptive_quick, dedicated_quick) } else { (adaptive_full, dedicated_full) };

    let mut rows = vec![
        Row {
            x: "SessionMux (adaptive)".into(),
            values: vec![format!("{mux_rate:.0}"), "1".into()],
        },
        Row {
            x: "dedicated channels".into(),
            values: vec![format!("{dedicated_rate:.0}"), sessions.to_string()],
        },
        Row {
            x: format!("baseline (start of PR {BASELINE_PR}) mux"),
            values: vec![format!("{BASELINE_MUX_MSGS_PER_S:.0}"), "1".into()],
        },
    ];
    for (b, rate) in &batch_sweep {
        rows.push(Row {
            x: format!("SessionMux, fixed batch<={b}"),
            values: vec![format!("{rate:.0}"), "1".into()],
        });
    }
    print_table(
        "mux fan-in throughput (32 sessions)",
        "transport",
        &["msgs/s", "physical channels"],
        &rows,
    );
    println!(
        "adaptive mux vs dedicated: {:.2}x quick, {:.2}x full (>=1.0x means the mux won); \
         mux vs start-of-PR-{BASELINE_PR} mux: {:.2}x",
        adaptive_quick / dedicated_quick,
        adaptive_full / dedicated_full,
        mux_rate / BASELINE_MUX_MSGS_PER_S,
    );

    let sweep_json = batch_sweep
        .iter()
        .map(|(b, r)| format!("      {{\"batch\": {b}, \"mux_msgs_per_s\": {r:.0}}}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"quick\": {quick},\n",
            "  \"recv_wakeup_us\": {{\n",
            "    \"polled\": {{\"median\": {pm:.2}, \"p90\": {pp:.2}, \"mean\": {pa:.2}}},\n",
            "    \"condvar\": {{\"median\": {cm:.2}, \"p90\": {cp:.2}, \"mean\": {ca:.2}}},\n",
            "    \"select\": {{\"median\": {sm:.2}, \"p90\": {sp:.2}, \"mean\": {sa:.2}}},\n",
            "    \"speedup_recv\": {sr:.2},\n",
            "    \"speedup_select\": {ss:.2}\n",
            "  }},\n",
            "  \"mux_fanin\": {{\n",
            "    \"sessions\": {sess},\n",
            "    \"messages_per_session\": {per},\n",
            "    \"batch_mode\": \"adaptive\",\n",
            "    \"mux_msgs_per_s\": {mr:.0},\n",
            "    \"dedicated_msgs_per_s\": {dr:.0},\n",
            "    \"mux_physical_channels\": 1,\n",
            "    \"quick_mode\": {{\"messages_per_session\": {fq}, \"adaptive_msgs_per_s\": \
             {aq:.0}, \"dedicated_msgs_per_s\": {dq:.0}}},\n",
            "    \"full_mode\": {{\"messages_per_session\": {ff}, \"adaptive_msgs_per_s\": \
             {af:.0}, \"dedicated_msgs_per_s\": {df:.0}}},\n",
            "    \"batch_sweep\": [\n",
            "{sweep}\n",
            "    ],\n",
            "    \"baseline\": {{\n",
            "      \"pr\": {bpr},\n",
            "      \"note\": \"rates at the start of PR {bpr}: fixed batch-64, copying decode\",\n",
            "      \"mux_msgs_per_s\": {bmr:.0},\n",
            "      \"dedicated_msgs_per_s\": {bdr:.0}\n",
            "    }}\n",
            "  }}\n",
            "}}\n"
        ),
        quick = quick,
        pm = polled.median_us,
        pp = polled.p90_us,
        pa = polled.mean_us,
        cm = condvar.median_us,
        cp = condvar.p90_us,
        ca = condvar.mean_us,
        sm = select.median_us,
        sp = select.p90_us,
        sa = select.mean_us,
        sr = speedup,
        ss = select_speedup,
        sess = sessions,
        per = per_session,
        mr = mux_rate,
        dr = dedicated_rate,
        fq = FANIN_QUICK,
        aq = adaptive_quick,
        dq = dedicated_quick,
        ff = FANIN_FULL,
        af = adaptive_full,
        df = dedicated_full,
        sweep = sweep_json,
        bpr = BASELINE_PR,
        bmr = BASELINE_MUX_MSGS_PER_S,
        bdr = BASELINE_DEDICATED_MSGS_PER_S,
    );
    // Anchor the artifact at the workspace root regardless of the bench's
    // working directory, so CI (and humans) always find it in one place.
    let mut f = std::fs::File::create(&out).expect("create BENCH_transport.json");
    f.write_all(json.as_bytes()).expect("write BENCH_transport.json");
    println!("\nwrote {}", out.display());

    // Regression gate: a >30% drop of mux_msgs_per_s vs the committed
    // artifact fails the run — but only when the hardware-neutral
    // mux/dedicated ratio (both measured in *this* run) regressed by >30%
    // too. A runner that is uniformly slower than the committing host
    // shifts both rates together and passes; a real mux regression moves
    // the ratio and fails.
    let skip_gate = std::env::var("LMON_BENCH_SKIP_GATE").map(|v| v == "1").unwrap_or(false);
    match committed {
        Some((committed_mux, committed_dedicated)) if !skip_gate => {
            let floor = committed_mux * GATE_FLOOR;
            let committed_ratio = committed_mux / committed_dedicated.max(1.0);
            let ratio = mux_rate / dedicated_rate.max(1.0);
            let ratio_floor = committed_ratio * GATE_FLOOR;
            if mux_rate < floor && ratio < ratio_floor {
                eprintln!(
                    "REGRESSION GATE FAILED: mux_msgs_per_s {mux_rate:.0} is more than 30% below \
                     the committed {committed_mux:.0} (floor {floor:.0}) AND the mux/dedicated \
                     ratio {ratio:.3} fell below {ratio_floor:.3} (committed \
                     {committed_ratio:.3}), so this is not just a slower machine. Set \
                     LMON_BENCH_SKIP_GATE=1 to skip on noisy runners."
                );
                std::process::exit(1);
            }
            println!(
                "regression gate passed: {mux_rate:.0} msgs/s (floor {floor:.0}, committed \
                 {committed_mux:.0}); mux/dedicated ratio {ratio:.3} (committed \
                 {committed_ratio:.3})"
            );
        }
        Some(_) => println!("regression gate skipped (LMON_BENCH_SKIP_GATE=1)"),
        None => println!(
            "regression gate skipped (no committed BENCH_transport.json in this run's mode)"
        ),
    }

    // Adaptive gate: the controller replaced the static batch knob, so it
    // must not lose to any fixed setting it made unreachable. Both sides
    // are measured in this run, so no committed artifact is needed.
    let (best_batch, best_fixed) = batch_sweep
        .iter()
        .copied()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty sweep");
    let adaptive_floor = best_fixed * ADAPTIVE_GATE_FLOOR;
    if skip_gate {
        println!("adaptive gate skipped (LMON_BENCH_SKIP_GATE=1)");
    } else if mux_rate < adaptive_floor {
        eprintln!(
            "ADAPTIVE GATE FAILED: adaptive rate {mux_rate:.0} msgs/s fell more than 10% below \
             the best fixed-batch rate {best_fixed:.0} (batch<={best_batch}, floor \
             {adaptive_floor:.0}). The controller must match the static knob it replaced. Set \
             LMON_BENCH_SKIP_GATE=1 to skip on noisy runners."
        );
        std::process::exit(1);
    } else {
        println!(
            "adaptive gate passed: {mux_rate:.0} msgs/s vs best fixed {best_fixed:.0} \
             (batch<={best_batch}, floor {adaptive_floor:.0})"
        );
    }
}
