//! # lmon-bench — the figure/table regeneration harness
//!
//! Every evaluation artifact of the paper has a dedicated bench target
//! (`harness = false`, so `cargo bench` prints the tables directly):
//!
//! | target | regenerates |
//! |---|---|
//! | `fig3_launch_model` | Figure 3 — modeled vs measured `launchAndSpawn` breakdown, 16→128 daemons |
//! | `fig5_jobsnap` | Figure 5 — Jobsnap total vs `init→attachAndSpawn`, 16→1024 daemons |
//! | `fig6_stat_startup` | Figure 6 — STAT startup: MRNet-rsh vs LaunchMON, 4→512 nodes |
//! | `table1_oss_apai` | Table 1 — O\|SS APAI access: DPCL vs LaunchMON, 2→32 nodes |
//! | `ablations` | design-choice studies DESIGN.md calls out |
//! | `micro_hotpaths` | criterion micro-benches of the real hot paths |
//! | `transport_latency` | recv wakeup latency + mux fan-in, self-gating vs `BENCH_transport.json` |
//! | `recovery_latency` | overlay kill → heal → broadcast latency, self-gating vs `BENCH_recovery.json` |
//! | `daemon_storm` | §2 launch storm through `lmond` admission control → `BENCH_daemon.json` |
//! | `launch_latency` | per-phase time-to-ready, parallel vs sequential fan-out, self-gating vs `BENCH_launch.json` |
//! | `upgrade_rolling` | rolling comm-daemon upgrade + phi vs sweep detection, self-gating vs `BENCH_upgrade.json` |
//! | `federation_routing` | per-group federation constants + million-node projection, self-gating vs `BENCH_federation.json` |
//!
//! This library holds the shared table-rendering helpers and the paper's
//! reference numbers, so each bench can print paper-vs-reproduction
//! comparisons.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A rendered comparison row: scale point, paper value, reproduced value.
#[derive(Debug, Clone)]
pub struct Row {
    /// The x-axis value (daemon count, node count, ...).
    pub x: String,
    /// Per-column values.
    pub values: Vec<String>,
}

/// Print an aligned table with a title and column headers.
pub fn print_table(title: &str, x_label: &str, columns: &[&str], rows: &[Row]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = columns.iter().map(|c| c.len()).collect();
    let x_width =
        rows.iter().map(|r| r.x.len()).chain(std::iter::once(x_label.len())).max().unwrap_or(8);
    for row in rows {
        for (i, v) in row.values.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(v.len());
            }
        }
    }
    print!("{x_label:<x_width$}");
    for (c, w) in columns.iter().zip(&widths) {
        print!("  {c:>w$}");
    }
    println!();
    for row in rows {
        print!("{:<x_width$}", row.x);
        for (v, w) in row.values.iter().zip(&widths) {
            print!("  {v:>w$}");
        }
        println!();
    }
}

/// Format seconds with 3 decimals.
pub fn s3(v: f64) -> String {
    format!("{v:.3}s")
}

/// Format a ratio like `17.0x`.
pub fn ratio(a: f64, b: f64) -> String {
    format!("{:.1}x", a / b)
}

/// Pull the first number following `key` out of a JSON blob — enough of a
/// parser for the self-gating benches (the workspace vendors no serde).
/// Used by the `transport_latency` and `recovery_latency` regression gates
/// to read the committed artifact.
pub fn extract_json_number(json: &str, key: &str) -> Option<f64> {
    let at = json.find(key)? + key.len();
    let rest = json[at..].trim_start();
    let end =
        rest.find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-')).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Paper reference values for Figure 6 (tool daemon count → seconds).
pub const PAPER_FIG6_MRNET: &[(usize, f64)] = &[(4, 0.77), (256, 60.8)];
/// Paper reference values for Figure 6, LaunchMON curve.
pub const PAPER_FIG6_LMON: &[(usize, f64)] = &[(4, 0.46), (256, 3.57), (512, 5.6)];
/// Paper reference values for Table 1, DPCL row (nodes → seconds).
pub const PAPER_TABLE1_DPCL: &[(usize, f64)] =
    &[(2, 33.77), (4, 34.27), (8, 34.31), (16, 34.32), (32, 34.66)];
/// Paper reference values for Table 1, LaunchMON row.
pub const PAPER_TABLE1_LMON: &[(usize, f64)] =
    &[(2, 0.606), (4, 0.627), (8, 0.604), (16, 0.617), (32, 0.626)];
/// Paper reference values for Figure 5 (daemons → total seconds).
pub const PAPER_FIG5_TOTAL: &[(usize, f64)] = &[(512, 1.5), (1024, 2.92)];
/// Paper reference: Figure 5 launch portion at 1024 daemons.
pub const PAPER_FIG5_LAUNCH_1024: f64 = 2.76;
/// Paper reference: Figure 3 — total below 1 s at 128 daemons, LaunchMON
/// share ≈ 5.2%.
pub const PAPER_FIG3_SHARE_128: f64 = 0.052;

/// Look up a paper reference value, if that scale point was reported.
pub fn paper_ref(table: &[(usize, f64)], x: usize) -> Option<f64> {
    table.iter().find(|(k, _)| *k == x).map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ref_lookup() {
        assert_eq!(paper_ref(PAPER_FIG6_MRNET, 256), Some(60.8));
        assert_eq!(paper_ref(PAPER_FIG6_MRNET, 100), None);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(s3(1.23456), "1.235s");
        assert_eq!(ratio(10.0, 2.0), "5.0x");
    }

    #[test]
    fn table_printing_does_not_panic() {
        print_table(
            "demo",
            "n",
            &["a", "b"],
            &[Row { x: "4".into(), values: vec!["1.0".into(), "2.0".into()] }],
        );
    }
}
