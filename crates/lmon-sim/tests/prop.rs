//! Property tests for the DES kernel: determinism, queue stability, and
//! network-model invariants — the properties every figure rests on.

use proptest::prelude::*;

use lmon_sim::engine::{Actor, ActorId, Ctx, Sim};
use lmon_sim::net::{Endpoint, LinkSpec, NetModel};
use lmon_sim::queue::EventQueue;
use lmon_sim::time::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn queue_pops_in_nondecreasing_time_order(
        entries in proptest::collection::vec((0u64..1_000_000, any::<u16>()), 1..200)
    ) {
        let mut q = EventQueue::new();
        for (t, v) in &entries {
            q.push(SimTime(*t), *v);
        }
        let mut last = SimTime::ZERO;
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            popped += 1;
        }
        prop_assert_eq!(popped, entries.len());
    }

    #[test]
    fn queue_is_fifo_within_equal_times(
        times in proptest::collection::vec(0u64..5, 1..100)
    ) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime(*t), i);
        }
        let mut last_per_time: std::collections::HashMap<u64, usize> = Default::default();
        while let Some((t, i)) = q.pop() {
            if let Some(prev) = last_per_time.insert(t.0, i) {
                prop_assert!(i > prev, "FIFO violated at t={}", t.0);
            }
        }
    }

    #[test]
    fn simulation_is_deterministic(
        seed in any::<u64>(),
        fanout in 1u32..8,
        rounds in 1u32..6,
    ) {
        #[derive(Clone)]
        enum Msg { Tick(u32) }
        struct Fanner { fanout: u32 }
        impl Actor<Msg> for Fanner {
            fn on_message(&mut self, Msg::Tick(r): Msg, ctx: &mut Ctx<'_, Msg>) {
                if r == 0 { return; }
                use rand::Rng;
                for _ in 0..self.fanout {
                    let jitter = ctx.rng.gen_range(1..1000u64);
                    let id = ctx.self_id();
                    ctx.send_in(SimDuration::from_nanos(jitter), id, Msg::Tick(r - 1));
                }
                ctx.metrics.count("ticks", 1);
            }
        }
        let run = |seed: u64| {
            let mut sim: Sim<Msg> = Sim::new(seed);
            let a: ActorId = sim.add_actor(Box::new(Fanner { fanout }));
            sim.inject(SimTime::ZERO, a, Msg::Tick(rounds));
            let end = sim.run(200_000);
            (end, sim.dispatched(), sim.metrics.counter("ticks"))
        };
        prop_assert_eq!(run(seed), run(seed), "same seed, same trace");
    }

    #[test]
    fn net_send_never_goes_backwards(
        sends in proptest::collection::vec((0u32..4, 0usize..100_000), 1..100)
    ) {
        let mut net = NetModel::new(LinkSpec::infiniband_tcp());
        let mut now = SimTime::ZERO;
        let mut last_arrival_per_ep: std::collections::HashMap<u32, SimTime> = Default::default();
        for (ep, bytes) in sends {
            now += SimDuration::from_nanos(10);
            let arrival = net.send(now, Endpoint(ep), bytes);
            prop_assert!(arrival > now, "arrival must be after send");
            if let Some(prev) = last_arrival_per_ep.insert(ep, arrival) {
                prop_assert!(arrival >= prev, "per-endpoint FIFO arrival order");
            }
        }
    }

    #[test]
    fn serialized_sends_cost_at_least_sum_of_occupancy(
        n in 1usize..50,
        bytes in 1usize..10_000,
    ) {
        let link = LinkSpec::infiniband_tcp();
        let mut net = NetModel::new(link);
        let mut last = SimTime::ZERO;
        for _ in 0..n {
            last = net.send(SimTime::ZERO, Endpoint(0), bytes);
        }
        let occupancy = link.send_overhead + link.transmit_time(bytes);
        let min_total = occupancy.mul_f64(n as f64) + link.latency;
        prop_assert!(last.as_nanos() + 1 >= min_total.as_nanos(),
            "{} sends of {} bytes arrived too fast: {:?} < {:?}", n, bytes, last, min_total);
    }

    #[test]
    fn time_arithmetic_is_consistent(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let t = SimTime(a);
        let d = SimDuration(b);
        prop_assert_eq!((t + d) - t, d);
        prop_assert_eq!(t.since(t + d), SimDuration::ZERO, "saturating backwards");
        // f64 roundtrip is exact for sub-2^52-nanosecond durations.
        prop_assert_eq!(SimDuration::from_secs_f64(d.as_secs_f64()), d);
    }
}
