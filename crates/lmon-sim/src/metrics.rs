//! Metrics collection: counters and named spans.
//!
//! The Figure-3 reproduction needs per-region cost breakdowns (Region A:
//! RM-dominant, Region B: RPDTAB fetch, Region C: handshake). Scenario
//! actors mark named spans as the protocol progresses; after the run, the
//! harness aggregates span durations per name.

use std::collections::HashMap;

use crate::time::{SimDuration, SimTime};

/// A named interval recorded during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Span name, e.g. `"t_job"` or `"region_b"`.
    pub name: String,
    /// Start of the interval.
    pub start: SimTime,
    /// End of the interval.
    pub end: SimTime,
}

impl Span {
    /// Duration covered by the span.
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// Counters and spans accumulated during a simulation run.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: HashMap<String, u64>,
    spans: Vec<Span>,
    open: HashMap<String, SimTime>,
    marks: HashMap<String, SimTime>,
}

impl Metrics {
    /// Increment a named counter by `by`.
    pub fn count(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Read a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Record a point-in-time mark (e.g. critical-path event `e3`).
    ///
    /// Re-marking a name overwrites; the last mark wins.
    pub fn mark(&mut self, name: &str, at: SimTime) {
        self.marks.insert(name.to_string(), at);
    }

    /// Read a mark.
    pub fn mark_at(&self, name: &str) -> Option<SimTime> {
        self.marks.get(name).copied()
    }

    /// Duration between two marks, if both exist and are ordered.
    pub fn between(&self, from: &str, to: &str) -> Option<SimDuration> {
        let a = self.mark_at(from)?;
        let b = self.mark_at(to)?;
        (b >= a).then(|| b - a)
    }

    /// Open a span; it stays open until [`Metrics::span_end`].
    pub fn span_begin(&mut self, name: &str, at: SimTime) {
        self.open.insert(name.to_string(), at);
    }

    /// Close a span opened with [`Metrics::span_begin`].
    ///
    /// Closing a span that was never opened is ignored (scenarios often
    /// have optional phases).
    pub fn span_end(&mut self, name: &str, at: SimTime) {
        if let Some(start) = self.open.remove(name) {
            self.spans.push(Span { name: name.to_string(), start, end: at });
        }
    }

    /// Record a complete span directly.
    pub fn span(&mut self, name: &str, start: SimTime, end: SimTime) {
        self.spans.push(Span { name: name.to_string(), start, end });
    }

    /// All closed spans, in completion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Sum of durations of all closed spans with this name.
    pub fn span_total(&self, name: &str) -> SimDuration {
        self.spans.iter().filter(|s| s.name == name).map(Span::duration).sum()
    }

    /// Names of spans still open (useful to assert clean shutdown).
    pub fn open_spans(&self) -> Vec<&str> {
        self.open.keys().map(String::as_str).collect()
    }

    /// All counters, sorted by name (stable output for reports).
    pub fn counters_sorted(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self.counters.iter().map(|(k, &n)| (k.as_str(), n)).collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_zero() {
        let mut m = Metrics::default();
        assert_eq!(m.counter("msgs"), 0);
        m.count("msgs", 2);
        m.count("msgs", 3);
        assert_eq!(m.counter("msgs"), 5);
    }

    #[test]
    fn spans_sum_by_name() {
        let mut m = Metrics::default();
        m.span("x", SimTime(0), SimTime(10));
        m.span("x", SimTime(20), SimTime(25));
        m.span("y", SimTime(0), SimTime(100));
        assert_eq!(m.span_total("x"), SimDuration(15));
        assert_eq!(m.span_total("y"), SimDuration(100));
        assert_eq!(m.span_total("z"), SimDuration::ZERO);
    }

    #[test]
    fn begin_end_pairs_close_properly() {
        let mut m = Metrics::default();
        m.span_begin("fetch", SimTime(5));
        assert_eq!(m.open_spans(), vec!["fetch"]);
        m.span_end("fetch", SimTime(9));
        assert!(m.open_spans().is_empty());
        assert_eq!(m.span_total("fetch"), SimDuration(4));
        // ending a never-opened span is a no-op
        m.span_end("ghost", SimTime(100));
        assert_eq!(m.spans().len(), 1);
    }

    #[test]
    fn marks_and_between() {
        let mut m = Metrics::default();
        m.mark("e2", SimTime(100));
        m.mark("e3", SimTime(350));
        assert_eq!(m.between("e2", "e3"), Some(SimDuration(250)));
        assert_eq!(m.between("e3", "e2"), None, "reversed order yields None");
        assert_eq!(m.between("e2", "missing"), None);
    }

    #[test]
    fn counters_sorted_is_stable() {
        let mut m = Metrics::default();
        m.count("b", 1);
        m.count("a", 2);
        assert_eq!(m.counters_sorted(), vec![("a", 2), ("b", 1)]);
    }
}
