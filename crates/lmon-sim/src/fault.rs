//! Deterministic fault injection for the simulation kernel.
//!
//! Scalability bugs surface only under scale-dependent fault schedules, so
//! the kernel supports *scheduled* faults: at a chosen virtual time an actor
//! can be killed (all subsequent deliveries dropped) or hung (deliveries
//! deferred until the hang lifts — the classic straggler). Faults are part
//! of the simulation schedule, not wall-clock races, so a seeded run with a
//! fault plan is exactly as reproducible as one without.
//!
//! The same module provides the *event trace*: an opt-in, per-delivery
//! record of `(seq, time, target, disposition)` the chaos suite compares
//! bit-for-bit across same-seed runs.

use std::fmt;

use crate::engine::ActorId;
use crate::time::SimTime;

/// What happens to an actor when a scheduled fault becomes active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The actor dies: every delivery at or after the fault time is dropped.
    Kill,
    /// The actor stops processing until `until`: deliveries inside the hang
    /// window are deferred to `until` (they queue up, straggler-style),
    /// deliveries after it proceed normally.
    HangUntil(SimTime),
}

/// A fault scheduled against one actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Virtual time at which the fault becomes active.
    pub at: SimTime,
    /// The actor it applies to.
    pub target: ActorId,
    /// What the fault does.
    pub kind: FaultKind,
}

/// How the engine disposed of one scheduled delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Delivered to the actor's handler.
    Delivered,
    /// Dropped because the target was killed.
    DroppedKilled,
    /// Requeued at the end of the target's hang window.
    DeferredHang,
}

impl Disposition {
    fn code(self) -> u8 {
        match self {
            Disposition::Delivered => b'D',
            Disposition::DroppedKilled => b'K',
            Disposition::DeferredHang => b'H',
        }
    }
}

impl fmt::Display for Disposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Disposition::Delivered => write!(f, "deliver"),
            Disposition::DroppedKilled => write!(f, "drop-killed"),
            Disposition::DeferredHang => write!(f, "defer-hang"),
        }
    }
}

/// One line of the event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Position in the dispatch sequence (including drops and deferrals).
    pub seq: u64,
    /// Virtual time of the event.
    pub at: SimTime,
    /// Target actor.
    pub to: ActorId,
    /// What happened to the message.
    pub disposition: Disposition,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:06} {:>16} -> a{:03} {}", self.seq, self.at, self.to.0, self.disposition)
    }
}

/// FNV-1a fingerprint over a trace; equal traces hash equal, and the hash is
/// stable across platforms (no pointer or HashMap iteration order involved).
pub fn trace_fingerprint(events: &[TraceEvent]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut mix = |b: u64| {
        for byte in b.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for e in events {
        mix(e.seq);
        mix(e.at.as_nanos());
        mix(e.to.0 as u64);
        mix(e.disposition.code() as u64);
    }
    h
}

/// Render a trace one event per line (the bit-for-bit comparison format).
pub fn trace_dump(events: &[TraceEvent]) -> String {
    use fmt::Write as _;
    let mut out = String::with_capacity(events.len() * 48);
    for e in events {
        writeln!(out, "{e}").expect("writing to String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, at: u64, to: u32, d: Disposition) -> TraceEvent {
        TraceEvent { seq, at: SimTime(at), to: ActorId(to), disposition: d }
    }

    #[test]
    fn fingerprint_is_order_and_content_sensitive() {
        let a = vec![ev(0, 10, 1, Disposition::Delivered), ev(1, 20, 2, Disposition::Delivered)];
        let b = vec![ev(1, 20, 2, Disposition::Delivered), ev(0, 10, 1, Disposition::Delivered)];
        let c =
            vec![ev(0, 10, 1, Disposition::DroppedKilled), ev(1, 20, 2, Disposition::Delivered)];
        assert_eq!(trace_fingerprint(&a), trace_fingerprint(&a));
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&b));
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&c));
    }

    #[test]
    fn dump_is_one_line_per_event_and_stable() {
        let events = vec![
            ev(0, 1_000, 3, Disposition::Delivered),
            ev(1, 2_000, 4, Disposition::DeferredHang),
        ];
        let dump = trace_dump(&events);
        assert_eq!(dump.lines().count(), 2);
        assert_eq!(dump, trace_dump(&events));
        assert!(dump.contains("a003"), "{dump}");
        assert!(dump.contains("defer-hang"), "{dump}");
    }
}
