//! Virtual time for the simulator: nanosecond ticks with ergonomic
//! constructors and arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of virtual time, in nanoseconds.
///
/// A distinct type (rather than `std::time::Duration`) keeps simulated and
/// wall-clock time from being mixed accidentally; conversions are explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// From fractional seconds (rounds to nanoseconds; negative clamps to 0).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// As nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by a dimensionless factor.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant on the virtual clock, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, fractional.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier` (saturates at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max_of(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3000));
        assert_eq!(SimDuration::from_micros(5), SimDuration::from_nanos(5000));
        assert_eq!(SimDuration::from_secs_f64(0.25), SimDuration::from_millis(250));
    }

    #[test]
    fn arithmetic_and_ordering() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(10);
        let t2 = t1 + SimDuration::from_millis(5);
        assert!(t2 > t1 && t1 > t0);
        assert_eq!(t2 - t0, SimDuration::from_millis(15));
        assert_eq!(t0 - t2, SimDuration::ZERO, "since() saturates");
        assert_eq!(t1.max_of(t2), t2);
        assert_eq!(t2.max_of(t1), t2);
    }

    #[test]
    fn negative_seconds_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    }

    #[test]
    fn display_uses_sensible_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert!(SimTime(1_500_000_000).to_string().starts_with("t+1.5"));
    }

    #[test]
    fn sum_and_scale() {
        let total: SimDuration = [1u64, 2, 3].into_iter().map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(6));
        assert_eq!(SimDuration::from_millis(10).mul_f64(2.5), SimDuration::from_millis(25));
    }
}
