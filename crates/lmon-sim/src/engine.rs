//! The actor-based simulation engine.
//!
//! Components of a scenario (front end, RM launcher, nodes, daemons) are
//! [`Actor`]s registered with a [`Sim`]. Actors communicate exclusively by
//! scheduling typed messages for each other through the [`Ctx`] handed to
//! their handler; the engine buffers those effects and applies them after
//! the handler returns, so the actor table is never aliased during dispatch.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::fault::{Disposition, FaultKind, FaultSpec, TraceEvent};
use crate::metrics::Metrics;
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Identifies an actor within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u32);

impl ActorId {
    /// Index into the actor table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A simulation participant handling typed messages `M`.
pub trait Actor<M> {
    /// Handle one message delivered at the current virtual time.
    fn on_message(&mut self, msg: M, ctx: &mut Ctx<'_, M>);

    /// Called once when the simulation starts, in registration order.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Diagnostic name used in traces.
    fn name(&self) -> String {
        "actor".to_string()
    }
}

/// Scheduling context handed to actor handlers.
///
/// All effects (sends, spawns) are buffered and applied by the engine after
/// the handler returns.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: ActorId,
    sends: Vec<(SimTime, ActorId, M)>,
    /// Metrics sink shared by the whole simulation.
    pub metrics: &'a mut Metrics,
    /// Deterministic RNG shared by the whole simulation.
    pub rng: &'a mut SmallRng,
    stop_requested: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The actor currently executing.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Deliver `msg` to `to` after `delay`.
    pub fn send_in(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        self.sends.push((self.now + delay, to, msg));
    }

    /// Deliver `msg` to `to` at absolute time `at` (clamped to now).
    pub fn send_at(&mut self, at: SimTime, to: ActorId, msg: M) {
        self.sends.push((at.max_of(self.now), to, msg));
    }

    /// Deliver `msg` to self after `delay` (a timer).
    pub fn timer(&mut self, delay: SimDuration, msg: M) {
        let id = self.self_id;
        self.send_in(delay, id, msg);
    }

    /// Ask the engine to stop after this dispatch completes.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

struct Pending<M> {
    to: ActorId,
    msg: M,
}

/// The simulation: an actor table, an event queue, and a virtual clock.
pub struct Sim<M> {
    actors: Vec<Box<dyn Actor<M>>>,
    queue: EventQueue<Pending<M>>,
    now: SimTime,
    rng: SmallRng,
    /// Metrics collected across the run.
    pub metrics: Metrics,
    started: bool,
    stop_requested: bool,
    dispatched: u64,
    faults: Vec<FaultSpec>,
    trace: Option<Vec<TraceEvent>>,
    trace_seq: u64,
}

impl<M> Sim<M> {
    /// A fresh simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            actors: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SmallRng::seed_from_u64(seed),
            metrics: Metrics::default(),
            started: false,
            stop_requested: false,
            dispatched: 0,
            faults: Vec::new(),
            trace: None,
            trace_seq: 0,
        }
    }

    /// Register an actor, returning its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(actor);
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total messages dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Schedule a message from outside any actor (e.g. the scenario driver).
    pub fn inject(&mut self, at: SimTime, to: ActorId, msg: M) {
        self.queue.push(at, Pending { to, msg });
    }

    /// Schedule a fault against an actor (see [`FaultKind`]). Faults are
    /// part of the deterministic schedule: same seed + same plan = same run.
    pub fn inject_fault(&mut self, spec: FaultSpec) {
        self.faults.push(spec);
    }

    /// Kill `target` at virtual time `at`: deliveries from then on are
    /// dropped (and counted under the `fault.dropped` metric).
    pub fn kill_at(&mut self, at: SimTime, target: ActorId) {
        self.inject_fault(FaultSpec { at, target, kind: FaultKind::Kill });
    }

    /// Hang `target` between `at` and `until`: deliveries inside the window
    /// are deferred to `until` (counted under `fault.deferred`).
    pub fn hang_between(&mut self, target: ActorId, at: SimTime, until: SimTime) {
        self.inject_fault(FaultSpec { at, target, kind: FaultKind::HangUntil(until) });
    }

    /// Scheduled faults, in injection order.
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// Start recording the per-delivery event trace (off by default: traces
    /// grow with the run and benches don't want the allocation).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// The recorded trace (empty unless [`Sim::enable_trace`] was called
    /// before the run).
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Fingerprint of the recorded trace (see [`crate::fault::trace_fingerprint`]).
    pub fn trace_fingerprint(&self) -> u64 {
        crate::fault::trace_fingerprint(self.trace())
    }

    /// The recorded trace rendered one event per line.
    pub fn trace_dump(&self) -> String {
        crate::fault::trace_dump(self.trace())
    }

    /// Resolve what happens to a delivery to `to` at time `now`: the first
    /// scheduled fault (in injection order) that is active wins.
    fn disposition_for(&self, now: SimTime, to: ActorId) -> Disposition {
        for f in &self.faults {
            if f.target != to || now < f.at {
                continue;
            }
            match f.kind {
                FaultKind::Kill => return Disposition::DroppedKilled,
                FaultKind::HangUntil(until) => {
                    if now < until {
                        return Disposition::DeferredHang;
                    }
                }
            }
        }
        Disposition::Delivered
    }

    fn record_trace(&mut self, at: SimTime, to: ActorId, disposition: Disposition) {
        let seq = self.trace_seq;
        self.trace_seq += 1;
        if let Some(trace) = self.trace.as_mut() {
            trace.push(TraceEvent { seq, at, to, disposition });
        }
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            let id = ActorId(i as u32);
            let mut ctx = Ctx {
                now: self.now,
                self_id: id,
                sends: Vec::new(),
                metrics: &mut self.metrics,
                rng: &mut self.rng,
                stop_requested: &mut self.stop_requested,
            };
            self.actors[i].on_start(&mut ctx);
            let sends = ctx.sends;
            for (at, to, msg) in sends {
                self.queue.push(at, Pending { to, msg });
            }
        }
    }

    /// Dispatch a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some((at, Pending { to, msg })) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time must be monotone");
        self.now = at;
        match self.disposition_for(at, to) {
            Disposition::Delivered => {}
            d @ Disposition::DroppedKilled => {
                self.record_trace(at, to, d);
                self.metrics.count("fault.dropped", 1);
                return true;
            }
            d @ Disposition::DeferredHang => {
                self.record_trace(at, to, d);
                self.metrics.count("fault.deferred", 1);
                let until = self
                    .faults
                    .iter()
                    .filter_map(|f| match f.kind {
                        FaultKind::HangUntil(u) if f.target == to && at >= f.at && at < u => {
                            Some(u)
                        }
                        _ => None,
                    })
                    .max()
                    .expect("deferral implies an active hang window");
                self.queue.push(until, Pending { to, msg });
                return true;
            }
        }
        self.record_trace(at, to, Disposition::Delivered);
        self.dispatched += 1;
        let idx = to.index();
        assert!(idx < self.actors.len(), "message to unknown actor {to:?}");
        let mut ctx = Ctx {
            now: self.now,
            self_id: to,
            sends: Vec::new(),
            metrics: &mut self.metrics,
            rng: &mut self.rng,
            stop_requested: &mut self.stop_requested,
        };
        self.actors[idx].on_message(msg, &mut ctx);
        let sends = ctx.sends;
        for (t, target, m) in sends {
            self.queue.push(t, Pending { to: target, msg: m });
        }
        true
    }

    /// Run until the queue drains, an actor calls [`Ctx::stop`], or the
    /// event budget is exhausted. Returns the finishing time.
    pub fn run(&mut self, max_events: u64) -> SimTime {
        self.start_if_needed();
        let mut budget = max_events;
        while budget > 0 && !self.stop_requested {
            if !self.step() {
                break;
            }
            budget -= 1;
        }
        assert!(
            budget > 0 || self.stop_requested || self.queue.is_empty(),
            "simulation exceeded its event budget of {max_events} events — likely a livelock"
        );
        self.now
    }

    /// Run until the queue is fully drained (convenience for scenarios with
    /// a natural end).
    pub fn run_to_completion(&mut self) -> SimTime {
        self.run(u64::MAX)
    }

    /// Immutable access to a registered actor (for post-run inspection).
    pub fn actor(&self, id: ActorId) -> &dyn Actor<M> {
        self.actors[id.index()].as_ref()
    }

    /// Mutable access to a registered actor (for scenario wiring).
    pub fn actor_mut(&mut self, id: ActorId) -> &mut Box<dyn Actor<M>> {
        &mut self.actors[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        peer: Option<ActorId>,
        remaining: u32,
        log: Vec<u32>,
    }

    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if let Some(peer) = self.peer {
                ctx.send_in(SimDuration::from_millis(1), peer, Msg::Ping(self.remaining));
            }
        }

        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            match msg {
                Msg::Ping(n) => {
                    self.log.push(n);
                    // reply to whoever pinged — here we know it's actor 0
                    ctx.send_in(SimDuration::from_millis(1), ActorId(0), Msg::Pong(n));
                }
                Msg::Pong(n) => {
                    self.log.push(n);
                    if n > 1 {
                        if let Some(peer) = self.peer {
                            ctx.send_in(SimDuration::from_millis(1), peer, Msg::Ping(n - 1));
                        }
                    } else {
                        ctx.stop();
                    }
                }
            }
        }
    }

    fn build() -> (Sim<Msg>, ActorId, ActorId) {
        let mut sim = Sim::new(42);
        let a = sim.add_actor(Box::new(Pinger { peer: None, remaining: 0, log: vec![] }));
        let b = sim.add_actor(Box::new(Pinger { peer: None, remaining: 0, log: vec![] }));
        (sim, a, b)
    }

    #[test]
    fn ping_pong_advances_time_and_stops() {
        let mut sim = Sim::new(1);
        let _a = sim.add_actor(Box::new(Pinger { peer: None, remaining: 0, log: vec![] }));
        let b = sim.add_actor(Box::new(Pinger { peer: None, remaining: 0, log: vec![] }));
        // wire: actor 0 pings b with countdown 3
        sim.actors[0] = Box::new(Pinger { peer: Some(b), remaining: 3, log: vec![] });
        let end = sim.run(1000);
        // 3 rounds of ping+pong at 1ms per hop = 6 ms
        assert_eq!(end, SimTime(6_000_000));
        assert!(sim.dispatched() >= 6);
    }

    #[test]
    fn injection_without_actors_panics_on_unknown_target() {
        let (mut sim, _a, _b) = build();
        sim.inject(SimTime(5), ActorId(99), Msg::Ping(0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run(10);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn same_time_messages_dispatch_in_schedule_order() {
        struct Collector {
            seen: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
        }
        impl Actor<u32> for Collector {
            fn on_message(&mut self, msg: u32, _ctx: &mut Ctx<'_, u32>) {
                self.seen.borrow_mut().push(msg);
            }
        }
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim: Sim<u32> = Sim::new(0);
        let c = sim.add_actor(Box::new(Collector { seen: seen.clone() }));
        for i in 0..50 {
            sim.inject(SimTime(100), c, i);
        }
        sim.run_to_completion();
        assert_eq!(*seen.borrow(), (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let run = |seed: u64| -> (SimTime, u64) {
            let mut sim = Sim::new(seed);
            let b = sim.add_actor(Box::new(Pinger { peer: None, remaining: 0, log: vec![] }));
            sim.actors[0] = Box::new(Pinger { peer: Some(b), remaining: 5, log: vec![] });
            // note: actor 0 has been replaced; register b's peer ping target
            let end = sim.run(10_000);
            (end, sim.dispatched())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn event_budget_panics_on_livelock() {
        struct Loopy;
        impl Actor<()> for Loopy {
            fn on_message(&mut self, _msg: (), ctx: &mut Ctx<'_, ()>) {
                ctx.timer(SimDuration::from_nanos(1), ());
            }
        }
        let mut sim: Sim<()> = Sim::new(0);
        let a = sim.add_actor(Box::new(Loopy));
        sim.inject(SimTime::ZERO, a, ());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run(100);
        }));
        assert!(result.is_err(), "livelock should trip the event budget");
    }

    #[test]
    fn killed_actor_stops_receiving_and_drops_are_counted() {
        struct Counter {
            seen: std::rc::Rc<std::cell::RefCell<u32>>,
        }
        impl Actor<u32> for Counter {
            fn on_message(&mut self, _msg: u32, _ctx: &mut Ctx<'_, u32>) {
                *self.seen.borrow_mut() += 1;
            }
        }
        let seen = std::rc::Rc::new(std::cell::RefCell::new(0));
        let mut sim: Sim<u32> = Sim::new(0);
        let c = sim.add_actor(Box::new(Counter { seen: seen.clone() }));
        for i in 0..10u64 {
            sim.inject(SimTime(i * 100), c, i as u32);
        }
        // Kill at t=450: deliveries at 0..=400 land (5), 500..=900 drop (5).
        sim.kill_at(SimTime(450), c);
        sim.run_to_completion();
        assert_eq!(*seen.borrow(), 5);
        assert_eq!(sim.metrics.counter("fault.dropped"), 5);
    }

    #[test]
    fn hung_actor_defers_deliveries_to_window_end() {
        struct Stamps {
            at: std::rc::Rc<std::cell::RefCell<Vec<SimTime>>>,
        }
        impl Actor<u32> for Stamps {
            fn on_message(&mut self, _msg: u32, ctx: &mut Ctx<'_, u32>) {
                self.at.borrow_mut().push(ctx.now());
            }
        }
        let at = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim: Sim<u32> = Sim::new(0);
        let s = sim.add_actor(Box::new(Stamps { at: at.clone() }));
        sim.inject(SimTime(100), s, 0);
        sim.inject(SimTime(200), s, 1); // inside the hang window: deferred
        sim.inject(SimTime(900), s, 2);
        sim.hang_between(s, SimTime(150), SimTime(500));
        sim.run_to_completion();
        assert_eq!(*at.borrow(), vec![SimTime(100), SimTime(500), SimTime(900)]);
        assert_eq!(sim.metrics.counter("fault.deferred"), 1);
    }

    #[test]
    fn trace_is_bit_for_bit_reproducible_with_faults() {
        let run = || {
            let mut sim = Sim::new(11);
            let b = sim.add_actor(Box::new(Pinger { peer: None, remaining: 0, log: vec![] }));
            sim.actors[0] = Box::new(Pinger { peer: Some(b), remaining: 4, log: vec![] });
            sim.enable_trace();
            sim.kill_at(SimTime(4_500_000), b);
            sim.run(10_000);
            (sim.trace_dump(), sim.trace_fingerprint())
        };
        let (d1, f1) = run();
        let (d2, f2) = run();
        assert_eq!(d1, d2, "same seed + same plan must replay identically");
        assert_eq!(f1, f2);
        assert!(d1.contains("drop-killed"), "{d1}");
    }

    #[test]
    fn trace_disabled_by_default_costs_nothing() {
        let mut sim: Sim<u32> = Sim::new(0);
        struct Sink;
        impl Actor<u32> for Sink {
            fn on_message(&mut self, _msg: u32, _ctx: &mut Ctx<'_, u32>) {}
        }
        let a = sim.add_actor(Box::new(Sink));
        sim.inject(SimTime(1), a, 0);
        sim.run_to_completion();
        assert!(sim.trace().is_empty());
        assert_eq!(sim.trace_fingerprint(), crate::fault::trace_fingerprint(&[]));
    }

    #[test]
    fn timers_deliver_to_self() {
        struct T {
            fired: u32,
        }
        impl Actor<()> for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.timer(SimDuration::from_secs(1), ());
            }
            fn on_message(&mut self, _msg: (), ctx: &mut Ctx<'_, ()>) {
                self.fired += 1;
                if self.fired < 3 {
                    ctx.timer(SimDuration::from_secs(1), ());
                }
            }
        }
        let mut sim: Sim<()> = Sim::new(0);
        let _ = sim.add_actor(Box::new(T { fired: 0 }));
        let end = sim.run_to_completion();
        assert_eq!(end, SimTime(3_000_000_000));
    }
}
