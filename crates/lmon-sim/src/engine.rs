//! The actor-based simulation engine.
//!
//! Components of a scenario (front end, RM launcher, nodes, daemons) are
//! [`Actor`]s registered with a [`Sim`]. Actors communicate exclusively by
//! scheduling typed messages for each other through the [`Ctx`] handed to
//! their handler; the engine buffers those effects and applies them after
//! the handler returns, so the actor table is never aliased during dispatch.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::metrics::Metrics;
use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Identifies an actor within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub u32);

impl ActorId {
    /// Index into the actor table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A simulation participant handling typed messages `M`.
pub trait Actor<M> {
    /// Handle one message delivered at the current virtual time.
    fn on_message(&mut self, msg: M, ctx: &mut Ctx<'_, M>);

    /// Called once when the simulation starts, in registration order.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Diagnostic name used in traces.
    fn name(&self) -> String {
        "actor".to_string()
    }
}

/// Scheduling context handed to actor handlers.
///
/// All effects (sends, spawns) are buffered and applied by the engine after
/// the handler returns.
pub struct Ctx<'a, M> {
    now: SimTime,
    self_id: ActorId,
    sends: Vec<(SimTime, ActorId, M)>,
    /// Metrics sink shared by the whole simulation.
    pub metrics: &'a mut Metrics,
    /// Deterministic RNG shared by the whole simulation.
    pub rng: &'a mut SmallRng,
    stop_requested: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The actor currently executing.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Deliver `msg` to `to` after `delay`.
    pub fn send_in(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        self.sends.push((self.now + delay, to, msg));
    }

    /// Deliver `msg` to `to` at absolute time `at` (clamped to now).
    pub fn send_at(&mut self, at: SimTime, to: ActorId, msg: M) {
        self.sends.push((at.max_of(self.now), to, msg));
    }

    /// Deliver `msg` to self after `delay` (a timer).
    pub fn timer(&mut self, delay: SimDuration, msg: M) {
        let id = self.self_id;
        self.send_in(delay, id, msg);
    }

    /// Ask the engine to stop after this dispatch completes.
    pub fn stop(&mut self) {
        *self.stop_requested = true;
    }
}

struct Pending<M> {
    to: ActorId,
    msg: M,
}

/// The simulation: an actor table, an event queue, and a virtual clock.
pub struct Sim<M> {
    actors: Vec<Box<dyn Actor<M>>>,
    queue: EventQueue<Pending<M>>,
    now: SimTime,
    rng: SmallRng,
    /// Metrics collected across the run.
    pub metrics: Metrics,
    started: bool,
    stop_requested: bool,
    dispatched: u64,
}

impl<M> Sim<M> {
    /// A fresh simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            actors: Vec::new(),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SmallRng::seed_from_u64(seed),
            metrics: Metrics::default(),
            started: false,
            stop_requested: false,
            dispatched: 0,
        }
    }

    /// Register an actor, returning its id.
    pub fn add_actor(&mut self, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = ActorId(self.actors.len() as u32);
        self.actors.push(actor);
        id
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total messages dispatched so far.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Schedule a message from outside any actor (e.g. the scenario driver).
    pub fn inject(&mut self, at: SimTime, to: ActorId, msg: M) {
        self.queue.push(at, Pending { to, msg });
    }

    fn start_if_needed(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for i in 0..self.actors.len() {
            let id = ActorId(i as u32);
            let mut ctx = Ctx {
                now: self.now,
                self_id: id,
                sends: Vec::new(),
                metrics: &mut self.metrics,
                rng: &mut self.rng,
                stop_requested: &mut self.stop_requested,
            };
            self.actors[i].on_start(&mut ctx);
            let sends = ctx.sends;
            for (at, to, msg) in sends {
                self.queue.push(at, Pending { to, msg });
            }
        }
    }

    /// Dispatch a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        self.start_if_needed();
        let Some((at, Pending { to, msg })) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time must be monotone");
        self.now = at;
        self.dispatched += 1;
        let idx = to.index();
        assert!(idx < self.actors.len(), "message to unknown actor {to:?}");
        let mut ctx = Ctx {
            now: self.now,
            self_id: to,
            sends: Vec::new(),
            metrics: &mut self.metrics,
            rng: &mut self.rng,
            stop_requested: &mut self.stop_requested,
        };
        self.actors[idx].on_message(msg, &mut ctx);
        let sends = ctx.sends;
        for (t, target, m) in sends {
            self.queue.push(t, Pending { to: target, msg: m });
        }
        true
    }

    /// Run until the queue drains, an actor calls [`Ctx::stop`], or the
    /// event budget is exhausted. Returns the finishing time.
    pub fn run(&mut self, max_events: u64) -> SimTime {
        self.start_if_needed();
        let mut budget = max_events;
        while budget > 0 && !self.stop_requested {
            if !self.step() {
                break;
            }
            budget -= 1;
        }
        assert!(
            budget > 0 || self.stop_requested || self.queue.is_empty(),
            "simulation exceeded its event budget of {max_events} events — likely a livelock"
        );
        self.now
    }

    /// Run until the queue is fully drained (convenience for scenarios with
    /// a natural end).
    pub fn run_to_completion(&mut self) -> SimTime {
        self.run(u64::MAX)
    }

    /// Immutable access to a registered actor (for post-run inspection).
    pub fn actor(&self, id: ActorId) -> &dyn Actor<M> {
        self.actors[id.index()].as_ref()
    }

    /// Mutable access to a registered actor (for scenario wiring).
    pub fn actor_mut(&mut self, id: ActorId) -> &mut Box<dyn Actor<M>> {
        &mut self.actors[id.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Pinger {
        peer: Option<ActorId>,
        remaining: u32,
        log: Vec<u32>,
    }

    impl Actor<Msg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            if let Some(peer) = self.peer {
                ctx.send_in(SimDuration::from_millis(1), peer, Msg::Ping(self.remaining));
            }
        }

        fn on_message(&mut self, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
            match msg {
                Msg::Ping(n) => {
                    self.log.push(n);
                    // reply to whoever pinged — here we know it's actor 0
                    ctx.send_in(SimDuration::from_millis(1), ActorId(0), Msg::Pong(n));
                }
                Msg::Pong(n) => {
                    self.log.push(n);
                    if n > 1 {
                        if let Some(peer) = self.peer {
                            ctx.send_in(SimDuration::from_millis(1), peer, Msg::Ping(n - 1));
                        }
                    } else {
                        ctx.stop();
                    }
                }
            }
        }
    }

    fn build() -> (Sim<Msg>, ActorId, ActorId) {
        let mut sim = Sim::new(42);
        let a = sim.add_actor(Box::new(Pinger { peer: None, remaining: 0, log: vec![] }));
        let b = sim.add_actor(Box::new(Pinger { peer: None, remaining: 0, log: vec![] }));
        (sim, a, b)
    }

    #[test]
    fn ping_pong_advances_time_and_stops() {
        let mut sim = Sim::new(1);
        let _a = sim.add_actor(Box::new(Pinger { peer: None, remaining: 0, log: vec![] }));
        let b = sim.add_actor(Box::new(Pinger { peer: None, remaining: 0, log: vec![] }));
        // wire: actor 0 pings b with countdown 3
        sim.actors[0] = Box::new(Pinger { peer: Some(b), remaining: 3, log: vec![] });
        let end = sim.run(1000);
        // 3 rounds of ping+pong at 1ms per hop = 6 ms
        assert_eq!(end, SimTime(6_000_000));
        assert!(sim.dispatched() >= 6);
    }

    #[test]
    fn injection_without_actors_panics_on_unknown_target() {
        let (mut sim, _a, _b) = build();
        sim.inject(SimTime(5), ActorId(99), Msg::Ping(0));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run(10);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn same_time_messages_dispatch_in_schedule_order() {
        struct Collector {
            seen: std::rc::Rc<std::cell::RefCell<Vec<u32>>>,
        }
        impl Actor<u32> for Collector {
            fn on_message(&mut self, msg: u32, _ctx: &mut Ctx<'_, u32>) {
                self.seen.borrow_mut().push(msg);
            }
        }
        let seen = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut sim: Sim<u32> = Sim::new(0);
        let c = sim.add_actor(Box::new(Collector { seen: seen.clone() }));
        for i in 0..50 {
            sim.inject(SimTime(100), c, i);
        }
        sim.run_to_completion();
        assert_eq!(*seen.borrow(), (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn deterministic_across_runs_with_same_seed() {
        let run = |seed: u64| -> (SimTime, u64) {
            let mut sim = Sim::new(seed);
            let b = sim.add_actor(Box::new(Pinger { peer: None, remaining: 0, log: vec![] }));
            sim.actors[0] = Box::new(Pinger { peer: Some(b), remaining: 5, log: vec![] });
            // note: actor 0 has been replaced; register b's peer ping target
            let end = sim.run(10_000);
            (end, sim.dispatched())
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn event_budget_panics_on_livelock() {
        struct Loopy;
        impl Actor<()> for Loopy {
            fn on_message(&mut self, _msg: (), ctx: &mut Ctx<'_, ()>) {
                ctx.timer(SimDuration::from_nanos(1), ());
            }
        }
        let mut sim: Sim<()> = Sim::new(0);
        let a = sim.add_actor(Box::new(Loopy));
        sim.inject(SimTime::ZERO, a, ());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.run(100);
        }));
        assert!(result.is_err(), "livelock should trip the event budget");
    }

    #[test]
    fn timers_deliver_to_self() {
        struct T {
            fired: u32,
        }
        impl Actor<()> for T {
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.timer(SimDuration::from_secs(1), ());
            }
            fn on_message(&mut self, _msg: (), ctx: &mut Ctx<'_, ()>) {
                self.fired += 1;
                if self.fired < 3 {
                    ctx.timer(SimDuration::from_secs(1), ());
                }
            }
        }
        let mut sim: Sim<()> = Sim::new(0);
        let _ = sim.add_actor(Box::new(T { fired: 0 }));
        let end = sim.run_to_completion();
        assert_eq!(end, SimTime(3_000_000_000));
    }
}
