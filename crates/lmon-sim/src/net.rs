//! Network timing model.
//!
//! Launch-time traffic is control-plane traffic: small messages whose cost
//! is dominated by per-message latency, plus serialization at busy endpoints
//! (one front end talking to N daemons pushes messages out one at a time).
//! The model captures exactly those two effects:
//!
//! * a [`LinkSpec`] gives per-hop latency and bandwidth;
//! * [`NetModel`] tracks, per endpoint, when its transmit path is next free,
//!   so bursts of sends from one endpoint serialize while independent
//!   endpoints proceed in parallel.
//!
//! This is what makes a *flat* (1-to-N) gather linear in N at the master
//! while a *tree* gather costs O(log N) rounds — the structural difference
//! behind Figures 3 and 6.

use std::collections::HashMap;

use crate::time::{SimDuration, SimTime};

/// Latency/bandwidth description of a link class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// One-way propagation + protocol latency per message.
    pub latency: SimDuration,
    /// Payload bandwidth in bytes per second.
    pub bytes_per_sec: f64,
    /// Fixed per-message CPU cost at the sender (marshalling, syscalls).
    pub send_overhead: SimDuration,
}

impl LinkSpec {
    /// A link resembling the paper's 4x DDR InfiniBand fabric as seen by a
    /// user-level TCP stream (LMONP runs on TCP/IP even on IB clusters).
    pub fn infiniband_tcp() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(60),
            bytes_per_sec: 900.0e6,
            send_overhead: SimDuration::from_micros(12),
        }
    }

    /// A slower management Ethernet, for contrast in ablations.
    pub fn mgmt_ethernet() -> Self {
        LinkSpec {
            latency: SimDuration::from_micros(250),
            bytes_per_sec: 90.0e6,
            send_overhead: SimDuration::from_micros(25),
        }
    }

    /// Time the wire is occupied by a message of `bytes` bytes.
    pub fn transmit_time(&self, bytes: usize) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// End-to-end delivery time for one unconstrained message.
    pub fn delivery_time(&self, bytes: usize) -> SimDuration {
        self.send_overhead + self.transmit_time(bytes) + self.latency
    }
}

/// Identifies a network endpoint (usually one per actor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint(pub u32);

/// Per-endpoint serialized network model.
#[derive(Debug)]
pub struct NetModel {
    link: LinkSpec,
    tx_free: HashMap<Endpoint, SimTime>,
    messages: u64,
    bytes: u64,
}

impl NetModel {
    /// A model where every endpoint pair shares one link class.
    pub fn new(link: LinkSpec) -> Self {
        NetModel { link, tx_free: HashMap::new(), messages: 0, bytes: 0 }
    }

    /// The link class in use.
    pub fn link(&self) -> LinkSpec {
        self.link
    }

    /// Compute the arrival time of a message sent by `from` at `now`, and
    /// advance `from`'s transmit availability.
    ///
    /// The sender's transmit path is occupied for `send_overhead +
    /// transmit_time`; propagation latency then runs concurrently with the
    /// next send.
    pub fn send(&mut self, now: SimTime, from: Endpoint, bytes: usize) -> SimTime {
        let free = self.tx_free.get(&from).copied().unwrap_or(SimTime::ZERO);
        let start = now.max_of(free);
        let occupied = self.link.send_overhead + self.link.transmit_time(bytes);
        let tx_done = start + occupied;
        self.tx_free.insert(from, tx_done);
        self.messages += 1;
        self.bytes += bytes as u64;
        tx_done + self.link.latency
    }

    /// Arrival time without contention (used for modelling broadcast over
    /// RM-provided fabrics that fan out inside the network).
    pub fn send_uncontended(&mut self, now: SimTime, bytes: usize) -> SimTime {
        self.messages += 1;
        self.bytes += bytes as u64;
        now + self.link.delivery_time(bytes)
    }

    /// When `ep`'s transmit path next becomes free.
    pub fn tx_free_at(&self, ep: Endpoint) -> SimTime {
        self.tx_free.get(&ep).copied().unwrap_or(SimTime::ZERO)
    }

    /// Total messages sent through the model.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes sent through the model.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_link() -> LinkSpec {
        LinkSpec {
            latency: SimDuration::from_micros(100),
            bytes_per_sec: 1e9,
            send_overhead: SimDuration::from_micros(10),
        }
    }

    #[test]
    fn delivery_time_components_add_up() {
        let link = fast_link();
        let d = link.delivery_time(1_000_000); // 1 MB at 1 GB/s = 1 ms
        let expect = SimDuration::from_micros(10)
            + SimDuration::from_millis(1)
            + SimDuration::from_micros(100);
        assert_eq!(d, expect);
    }

    #[test]
    fn sender_serializes_but_receivers_overlap() {
        let mut net = NetModel::new(fast_link());
        let fe = Endpoint(0);
        let t0 = SimTime::ZERO;
        // Two back-to-back sends from the same endpoint: second waits for
        // the first's occupancy (10us overhead + ~0 transmit), then both pay
        // 100us propagation.
        let a1 = net.send(t0, fe, 100);
        let a2 = net.send(t0, fe, 100);
        assert!(a2 > a1, "same-endpoint sends must serialize");
        // Sends from distinct endpoints at the same instant arrive together.
        let mut net2 = NetModel::new(fast_link());
        let b1 = net2.send(t0, Endpoint(1), 100);
        let b2 = net2.send(t0, Endpoint(2), 100);
        assert_eq!(b1, b2, "distinct endpoints don't contend");
    }

    #[test]
    fn flat_fanout_is_linear_in_n() {
        // The key structural effect: N messages from one endpoint take ~N
        // times the per-message occupancy.
        let mut net = NetModel::new(fast_link());
        let fe = Endpoint(0);
        let mut last = SimTime::ZERO;
        for _ in 0..100 {
            last = net.send(SimTime::ZERO, fe, 10_000);
        }
        let per_msg = fast_link().send_overhead + fast_link().transmit_time(10_000);
        let expected_tx_done = SimTime::ZERO + per_msg.mul_f64(100.0);
        assert_eq!(last, expected_tx_done + fast_link().latency);
    }

    #[test]
    fn counters_accumulate() {
        let mut net = NetModel::new(fast_link());
        net.send(SimTime::ZERO, Endpoint(0), 10);
        net.send_uncontended(SimTime::ZERO, 20);
        assert_eq!(net.messages(), 2);
        assert_eq!(net.bytes(), 30);
    }

    #[test]
    fn tx_free_tracks_last_send() {
        let mut net = NetModel::new(fast_link());
        assert_eq!(net.tx_free_at(Endpoint(9)), SimTime::ZERO);
        net.send(SimTime(1_000), Endpoint(9), 0);
        assert!(net.tx_free_at(Endpoint(9)) > SimTime(1_000));
    }
}
