//! # lmon-sim — deterministic discrete-event simulation kernel
//!
//! The paper's evaluation ran on Atlas, an 1,152-node Opteron/Infiniband
//! cluster we do not have. Per the reproduction plan (DESIGN.md §2), the
//! *functional* LaunchMON stack in this workspace runs for real on an
//! in-process virtual cluster, while the *paper-scale timing* experiments
//! (Figures 3, 5, 6 and Table 1) replay the same protocol schedules on this
//! discrete-event simulator with calibrated costs.
//!
//! The kernel is a classic sequential DES:
//!
//! * [`time::SimTime`] — nanosecond virtual clock;
//! * [`queue::EventQueue`] — a stable priority queue ordered by
//!   `(time, sequence)` so same-time events fire in schedule order and runs
//!   are bit-for-bit reproducible;
//! * [`engine::Sim`] — the actor scheduler: actors implement
//!   [`engine::Actor`] and exchange typed messages through a buffered
//!   [`engine::Ctx`], which avoids aliasing the actor table during dispatch;
//! * [`net::NetModel`] — a latency/bandwidth network with per-endpoint
//!   serialization (a front-end NIC can only push one message at a time —
//!   the effect that makes flat gathers linear and rsh loops serial);
//! * [`metrics::Metrics`] — counters and named spans used to produce the
//!   per-region cost breakdowns of the §4 model.
//!
//! Determinism: no wall-clock reads, a seeded [`rand::rngs::SmallRng`], and
//! the stable queue. Two runs with the same seed produce identical event
//! traces — asserted by tests, and recordable via [`engine::Sim::enable_trace`]
//! for bit-for-bit comparison.
//!
//! Fault injection: [`fault`] lets a scenario kill or hang any actor at a
//! chosen virtual time ([`engine::Sim::kill_at`], [`engine::Sim::hang_between`]).
//! Faults are part of the deterministic schedule, so chaos runs replay
//! exactly under the same seed — the property `lmon-testkit`'s scenario DSL
//! and the facade's `chaos_suite` build on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod queue;
pub mod time;

pub use engine::{Actor, ActorId, Ctx, Sim};
pub use fault::{Disposition, FaultKind, FaultSpec, TraceEvent};
pub use metrics::Metrics;
pub use net::{LinkSpec, NetModel};
pub use queue::EventQueue;
pub use time::{SimDuration, SimTime};
