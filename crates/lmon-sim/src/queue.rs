//! The stable event queue at the heart of the simulator.
//!
//! Ordering is `(time, seq)` where `seq` is a monotonically increasing
//! insertion counter. Ties in virtual time therefore dispatch in schedule
//! order, which makes runs deterministic — a property the reproduction
//! depends on (identical seeds must yield identical Figure data).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the queue: when, insertion order, and the payload.
#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered, insertion-stable event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event with its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop(), Some((SimTime(10), "a")));
        assert_eq!(q.pop(), Some((SimTime(20), "b")));
        assert_eq!(q.pop(), Some((SimTime(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_stability() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), 0);
        q.push(SimTime(5), 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime(5), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn peek_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::ZERO + SimDuration::from_millis(1), ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
