//! The STAT case study (§5.2): find why a parallel job is stuck.
//!
//! A 8-node × 8-task job "hangs": rank 0 never finished reading its input,
//! a few ranks wait in a collective, the rest spin in compute. STAT
//! attaches via LaunchMON, samples every task's stack, merges the traces
//! into a call-graph prefix tree over MRNet-style aggregation, and prints
//! the equivalence classes — pointing a debugger at 3 representative ranks
//! instead of 64 processes.
//!
//! ```text
//! cargo run --example stat_hang_analysis
//! ```

use std::sync::Arc;

use launchmon::cluster::config::ClusterConfig;
use launchmon::cluster::VirtualCluster;
use launchmon::core::fe::LmonFrontEnd;
use launchmon::rm::api::{JobSpec, ResourceManager};
use launchmon::rm::SlurmRm;
use launchmon::tools::stat::{run_stat_adhoc, run_stat_launchmon};

fn main() {
    let nodes = 8usize;
    let tpn = 8usize;
    let cluster = VirtualCluster::new(ClusterConfig::with_nodes(nodes));
    let rm: Arc<dyn ResourceManager> = Arc::new(SlurmRm::new(cluster.clone()));
    let job = rm.launch_job(&JobSpec::new("hung_app", nodes, tpn), false).expect("job");
    std::thread::sleep(std::time::Duration::from_millis(30));
    println!("job {}: {} tasks appear hung — attaching STAT\n", job.job_id, nodes * tpn);

    // --- LaunchMON startup path -------------------------------------------
    let fe = LmonFrontEnd::init(rm).expect("fe init");
    let outcome = run_stat_launchmon(&fe, job.launcher_pid, nodes as u32).expect("stat launchmon");
    println!(
        "daemons launched+connected in {:?} (rsh connections used: {})",
        outcome.connect_time, outcome.rsh_connects
    );

    println!("\n--- merged call-graph prefix tree ---");
    print!("{}", outcome.tree.render());

    println!("--- equivalence classes ({} total) ---", outcome.classes.len());
    for class in &outcome.classes {
        println!(
            "{:>3} ranks at {:<50} representative: rank {}",
            class.ranks.len(),
            class.path.join(" → "),
            class.representative()
        );
    }

    // --- the old way, for contrast ------------------------------------------
    let hosts: Vec<String> = (0..nodes).map(|i| cluster.config().hostname(i)).collect();
    let adhoc = run_stat_adhoc(&cluster, &hosts, (nodes * tpn) as u32).expect("stat adhoc");
    println!(
        "\nad hoc MRNet startup for comparison: {:?}, {} rsh connections (same classes: {})",
        adhoc.connect_time,
        adhoc.rsh_connects,
        adhoc.classes == outcome.classes
    );

    fe.shutdown().expect("shutdown");
}
