//! Quickstart: launch a parallel job under tool control and co-locate one
//! daemon per node — the LaunchMON "hello world".
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use launchmon::cluster::config::ClusterConfig;
use launchmon::cluster::VirtualCluster;
use launchmon::core::be::BeMain;
use launchmon::core::fe::LmonFrontEnd;
use launchmon::proto::payload::DaemonSpec;
use launchmon::rm::api::ResourceManager;
use launchmon::rm::SlurmRm;

fn main() {
    // 1. A virtual cluster of 4 compute nodes managed by a SLURM-like RM.
    let cluster = VirtualCluster::new(ClusterConfig::with_nodes(4));
    let rm: Arc<dyn ResourceManager> = Arc::new(SlurmRm::new(cluster));

    // 2. Initialize the LaunchMON front end (this starts the engine).
    let fe = LmonFrontEnd::init(rm).expect("front-end init");
    let session = fe.create_session();

    // 3. The tool daemon: runs on every node, sees its local tasks.
    let be_main: BeMain = Arc::new(|be| {
        let locals: Vec<String> =
            be.my_proctab().iter().map(|d| format!("rank {} (pid {})", d.rank, d.pid)).collect();
        println!(
            "[daemon {}/{} on {}] local tasks: {}",
            be.rank(),
            be.size(),
            be.hostname(),
            locals.join(", ")
        );
        // Master tells the FE once everyone has reported.
        be.barrier().expect("barrier");
        if be.am_i_master() {
            be.send_usrdata(b"all daemons reporting".to_vec()).expect("usrdata");
        }
        be.wait_shutdown().expect("shutdown order");
    });

    // 4. launchAndSpawn: one call launches the job (4 nodes x 8 tasks) and
    //    the daemons, fetches the RPDTAB, and completes the handshake.
    let outcome = fe
        .launch_and_spawn(session, "demo_app", &[], 4, 8, DaemonSpec::bare("demo_daemon"), be_main)
        .expect("launchAndSpawn");

    println!(
        "\nlaunched {} tasks on {} nodes; {} daemons ready",
        outcome.rpdtab.len(),
        outcome.rpdtab.host_count(),
        outcome.daemon_count
    );

    let msg = fe.recv_usrdata(session, std::time::Duration::from_secs(10)).expect("daemon message");
    println!("message from daemons: {}", String::from_utf8_lossy(&msg));

    // 5. The critical-path breakdown LaunchMON recorded (the §4 events).
    if let Some(b) = outcome.breakdown {
        println!("\ncritical path: total {:?}", b.total);
        println!("  T(job)       {:?}", b.t_job);
        println!("  RPDTAB fetch {:?}", b.t_rpdtab_fetch);
        println!("  T(daemon)    {:?}", b.t_daemon);
        println!("  handshake    {:?}", b.t_handshake);
    }

    // 6. Detach: daemons shut down, the job keeps running.
    fe.detach(session).expect("detach");
    fe.shutdown().expect("engine shutdown");
    println!("\ndetached; job continues without daemons. done.");
}
