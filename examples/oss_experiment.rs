//! The Open|SpeedShop case study (§5.3): swap the Instrumentor, keep the
//! tool.
//!
//! Runs the same APAI acquisition through both instrumentors — DPCL (root
//! super daemons + full launcher-binary parse) and LaunchMON (engine fetch)
//! — then runs a PC-sampling experiment over the job with LaunchMON-started
//! daemons.
//!
//! ```text
//! cargo run --example oss_experiment
//! ```

use std::sync::Arc;

use launchmon::cluster::config::ClusterConfig;
use launchmon::cluster::VirtualCluster;
use launchmon::core::fe::LmonFrontEnd;
use launchmon::rm::api::{JobSpec, ResourceManager};
use launchmon::rm::SlurmRm;
use launchmon::tools::dpcl::{DpclInfra, SyntheticBinary};
use launchmon::tools::oss::{
    run_pc_sampling, DpclInstrumentor, Instrumentor, LaunchmonInstrumentor,
};

fn main() {
    let cluster = VirtualCluster::new(ClusterConfig::with_nodes(4));
    let rm: Arc<dyn ResourceManager> = Arc::new(SlurmRm::new(cluster.clone()));
    let job = rm.launch_job(&JobSpec::new("solver", 4, 8), false).expect("job");
    std::thread::sleep(std::time::Duration::from_millis(30));

    // --- DPCL path: needs preinstalled root daemons + full binary parse ----
    println!("installing DPCL super daemons (root, one per node)...");
    let infra = DpclInfra::install(&cluster);
    println!("  {} persistent daemons installed\n", infra.daemon_count());

    let launcher_bin = SyntheticBinary::generate("srun", 300_000, 5);
    println!("DPCL instrumentor: parsing the {}-symbol launcher binary first...", 300_000);
    let mut dpcl = DpclInstrumentor::new(cluster.clone(), infra.clone(), launcher_bin);
    let d = dpcl.acquire_apai(job.launcher_pid).expect("dpcl acquire");
    println!("  APAI acquired in {:?} ({} tasks)\n", d.apai_time, d.rpdtab.len());

    // --- LaunchMON path: no root daemons, no parse --------------------------
    let fe = LmonFrontEnd::init(rm).expect("fe");
    let mut lmon = LaunchmonInstrumentor::new(&fe);
    let l = lmon.acquire_apai(job.launcher_pid).expect("lmon acquire");
    println!(
        "LaunchMON instrumentor: APAI acquired in {:?} ({} tasks)",
        l.apai_time,
        l.rpdtab.len()
    );
    assert_eq!(d.rpdtab, l.rpdtab);
    println!("  (identical RPDTAB from both paths)\n");
    if let Some(s) = lmon.session {
        fe.detach(s).expect("detach");
    }

    // --- a PC-sampling experiment over the job ------------------------------
    println!("running PC-sampling experiment (10 samples per task)...");
    let report = run_pc_sampling(&fe, job.launcher_pid, 10).expect("pc sampling");
    println!(
        "  {} samples over {} text-page buckets; top 5:",
        report.total_samples,
        report.histogram.len()
    );
    let mut buckets: Vec<(&u64, &u64)> = report.histogram.iter().collect();
    buckets.sort_by_key(|(_, count)| std::cmp::Reverse(**count));
    for (addr, count) in buckets.into_iter().take(5) {
        println!("    0x{addr:012x}  {count} samples");
    }

    infra.uninstall();
    fe.shutdown().expect("shutdown");
    println!("\ndone.");
}
