//! Scale exploration with the §4 performance model: what does tool daemon
//! launching cost on the 10^5–10^6-processor systems the paper's
//! introduction worries about?
//!
//! Sweeps the calibrated model (and, for contrast, the ad hoc baseline)
//! far past the paper's measured range.
//!
//! ```text
//! cargo run --example scale_explorer
//! ```

use launchmon::model::predict::{launch_breakdown, stat_adhoc_time, stat_launchmon_time};
use launchmon::model::scenario::{simulate_launch, simulate_stat_adhoc, AdhocResult};
use launchmon::model::CostParams;

fn main() {
    let p = CostParams::default();

    println!("launchAndSpawn at extreme scale (8 tasks/daemon):\n");
    println!(
        "{:>9}  {:>10}  {:>9}  {:>9}  {:>10}  {:>10}",
        "daemons", "tasks", "model", "simulated", "LMON share", "rsh baseline"
    );
    for exp in 4..=17u32 {
        let daemons = 1usize << exp;
        let tasks = daemons * 8;
        let model = launch_breakdown(&p, daemons, 8);
        let sim = simulate_launch(&p, daemons, 8);
        let adhoc = match stat_adhoc_time(&p, daemons) {
            Some(t) => format!("{t:.1}s"),
            None => "FAILS".to_string(),
        };
        println!(
            "{:>9}  {:>10}  {:>8.2}s  {:>8.2}s  {:>9.1}%  {:>12}",
            daemons,
            tasks,
            model.total(),
            sim.total(),
            model.launchmon_share() * 100.0,
            adhoc
        );
    }

    println!("\nSTAT startup, LaunchMON vs ad hoc:");
    for daemons in [256usize, 1024, 4096, 16384] {
        let lm = stat_launchmon_time(&p, daemons, 8);
        let adhoc = match simulate_stat_adhoc(&p, daemons) {
            AdhocResult::Completed { seconds, .. } => format!("{seconds:.1}s"),
            AdhocResult::ForkFailed { at_daemon, .. } => {
                format!("fails at daemon {at_daemon}")
            }
        };
        println!("  {daemons:>6} daemons: LaunchMON {lm:>7.2}s | ad hoc {adhoc}");
    }

    println!("\ninterpretation: the RM-driven path stays interactive-friendly into");
    println!("the 10^5 range; the dominant growth is the RM's own linear step");
    println!("bookkeeping (T(daemon), T(setup), T(collective)) — which is what the");
    println!("paper's conclusion says the model should 'guide improvements' in.");
}
