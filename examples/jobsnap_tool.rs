//! The Jobsnap case study (§5.1): snapshot every MPI task's `/proc` state.
//!
//! Launches a 6-node × 8-task job without any tool (as a user would), then
//! attaches Jobsnap to it and prints the per-task report — personality,
//! process state, memory statistics, and performance metrics, one line per
//! task, exactly as the paper's master daemon writes them.
//!
//! ```text
//! cargo run --example jobsnap_tool
//! ```

use std::sync::Arc;

use launchmon::cluster::config::ClusterConfig;
use launchmon::cluster::VirtualCluster;
use launchmon::core::fe::LmonFrontEnd;
use launchmon::rm::api::{JobSpec, ResourceManager};
use launchmon::rm::SlurmRm;
use launchmon::tools::jobsnap::run_jobsnap;

fn main() {
    let cluster = VirtualCluster::new(ClusterConfig::with_nodes(6));
    let rm: Arc<dyn ResourceManager> = Arc::new(SlurmRm::new(cluster));

    // A running production job, launched with no tool attached.
    let job = rm.launch_job(&JobSpec::new("climate_sim", 6, 8), false).expect("job launch");
    println!(
        "job {} running: 6 nodes x 8 tasks, launcher pid {:?}\n",
        job.job_id, job.launcher_pid
    );

    // Attach Jobsnap: daemons co-locate, snapshot, gather, merge.
    let fe = LmonFrontEnd::init(rm).expect("front-end init");
    let report = run_jobsnap(&fe, job.launcher_pid).expect("jobsnap");

    println!("--- jobsnap report: one line per task ---");
    for line in &report.lines {
        println!("{line}");
    }
    println!(
        "\n{} tasks snapshotted in {:?} (of which {:?} was init→attachAndSpawn)",
        report.lines.len(),
        report.total,
        report.launch
    );

    fe.shutdown().expect("shutdown");
}
