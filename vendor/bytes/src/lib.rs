//! Vendored, dependency-free subset of the [`bytes`](https://docs.rs/bytes)
//! crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of the `bytes` API that the LMONP codec
//! actually uses: the [`Buf`]/[`BufMut`] cursor traits (big-endian scalar
//! accessors only — LMONP is big-endian throughout), a [`BytesMut`] growable
//! buffer with cheap front consumption for the incremental frame reader, and
//! a [`Bytes`] shared view type for zero-copy payload slicing.
//!
//! Deliberate gaps, and one that closed: the shim still has no `unsafe`
//! vtable tricks, no `Buf` chaining, and no partial deallocation (a [`Bytes`]
//! view keeps its whole backing allocation alive until every view drops —
//! acceptable for transport read buffers that recycle quickly, documented so
//! nobody mistakes it for the real crate's behaviour). The gap that closed
//! for the ISSUE 6 borrowing decode path: [`BytesMut::split_to`] now returns
//! a [`Bytes`] *view* of the shared backing store instead of copying, and
//! [`Bytes::slice`]/[`Bytes::split_to`] subdivide views for free, so an
//! inbound frame's payload sections travel as refcount bumps. The price is
//! copy-on-unshare: a `BytesMut` whose backing store is still referenced by
//! outstanding views copies its *unread tail* (usually zero to a few header
//! bytes of a partial frame) into a fresh allocation on the next append —
//! surfaced through [`BytesMut::internal_copies`] so the frame reader's
//! decode-copy accounting stays honest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

/// Read-side byte cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;

    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

/// Write-side byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// The shared empty backing store: cloning an `Arc` is a refcount bump, so
/// empty `Bytes` (the common case for absent payload sections) allocate
/// nothing.
fn empty_store() -> Arc<Vec<u8>> {
    static EMPTY: OnceLock<Arc<Vec<u8>>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(Vec::new())).clone()
}

/// A cheap-to-clone, immutable view of a shared byte buffer (subset of
/// `bytes::Bytes`).
///
/// Cloning, [`Bytes::slice`] and [`Bytes::split_to`] are O(1) — a refcount
/// bump plus two indices; no payload bytes move. The backing allocation is
/// freed when the last view referencing it drops (whole-allocation
/// granularity — see the crate-root gap note).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty view (no allocation).
    pub fn new() -> Self {
        Bytes { data: empty_store(), start: 0, end: 0 }
    }

    /// A view copying `src` into a fresh backing store.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Number of bytes in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view of `range` (relative to this view) sharing the same
    /// backing store — O(1), no copy.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or decreasing.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Split off and return the first `at` bytes as their own view,
    /// leaving `self` with the rest — O(1), no copy.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes { data: self.data.clone(), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    /// Copy the viewed bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(src: &[u8]) -> Self {
        Bytes::copy_from_slice(src)
    }
}

impl<const N: usize> From<[u8; N]> for Bytes {
    fn from(src: [u8; N]) -> Self {
        Bytes::copy_from_slice(&src)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({:?})", self.as_slice())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// Growable byte buffer with cheap front consumption and zero-copy split-off
/// (subset of `bytes::BytesMut`).
///
/// The backing store is shared: [`BytesMut::split_to`] and
/// [`BytesMut::freeze`] hand out [`Bytes`] views into it without copying.
/// While such views are outstanding, the next append copies the *unread
/// tail* into a fresh store (copy-on-unshare); the cumulative cost is
/// surfaced through [`BytesMut::internal_copies`].
#[derive(Default, Clone)]
pub struct BytesMut {
    data: Arc<Vec<u8>>,
    /// Index of the first unread byte in `data`.
    head: usize,
    /// Cumulative bytes moved by un-share and compaction reclaims.
    copied: u64,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: empty_store(), head: 0, copied: 0 }
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Arc::new(Vec::with_capacity(cap)), head: 0, copied: 0 }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether the buffer holds no unread bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative bytes this buffer has moved internally to reclaim space:
    /// un-share copies (appending while split-off views are outstanding)
    /// plus compaction drains. Steady-state framing keeps this near zero —
    /// only a partial frame's tail ever needs to move.
    pub fn internal_copies(&self) -> u64 {
        self.copied
    }

    /// Append bytes at the back, un-sharing the backing store first if any
    /// split-off views still reference it.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.make_unique(src.len());
        let head = self.head;
        let v = Arc::get_mut(&mut self.data).expect("just made unique");
        compact(v, head, &mut self.head, &mut self.copied);
        v.extend_from_slice(src);
    }

    /// Reserve room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.make_unique(additional);
        let head = self.head;
        let v = Arc::get_mut(&mut self.data).expect("just made unique");
        compact(v, head, &mut self.head, &mut self.copied);
        v.reserve(additional);
    }

    /// Split off and return the first `at` unread bytes as a [`Bytes`] view
    /// of the shared backing store — O(1), no copy.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let piece = Bytes { data: self.data.clone(), start: self.head, end: self.head + at };
        self.head += at;
        piece
    }

    /// Freeze the unread bytes into an immutable [`Bytes`] view — O(1).
    pub fn freeze(mut self) -> Bytes {
        let len = self.data.len();
        let head = self.head;
        self.split_to(len - head)
    }

    /// Copy the unread bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    /// Ensure the backing store is uniquely owned, copying the unread tail
    /// out if split-off views still reference it.
    fn make_unique(&mut self, additional: usize) {
        if Arc::get_mut(&mut self.data).is_some() {
            return;
        }
        let tail = self.as_slice();
        let mut fresh = Vec::with_capacity(tail.len() + additional);
        fresh.extend_from_slice(tail);
        self.copied += fresh.len() as u64;
        self.data = Arc::new(fresh);
        self.head = 0;
    }
}

/// Drop a consumed prefix once it dominates the allocation, keeping
/// `advance`/`split_to` amortized O(1). Free function over the inner `Vec`
/// so callers can hold `Arc::get_mut` across the call.
fn compact(v: &mut Vec<u8>, head: usize, head_out: &mut usize, copied: &mut u64) {
    if head > 4096 && head * 2 > v.len() {
        *copied += (v.len() - head) as u64;
        v.drain(..head);
        *head_out = 0;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.head += cnt;
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { data: Arc::new(src.to_vec()), head: 0, copied: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_buf_roundtrip() {
        let mut v = Vec::new();
        v.put_u8(1);
        v.put_u16(0x0203);
        v.put_u32(0x0405_0607);
        v.put_u64(0x0809_0A0B_0C0D_0E0F);
        v.put_slice(b"xy");
        let mut s = &v[..];
        assert_eq!(s.remaining(), 17);
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.get_u16(), 0x0203);
        assert_eq!(s.get_u32(), 0x0405_0607);
        assert_eq!(s.get_u64(), 0x0809_0A0B_0C0D_0E0F);
        let mut rest = [0u8; 2];
        s.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xy");
        assert!(!s.has_remaining());
    }

    #[test]
    fn bytes_mut_split_and_advance() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(b"hello world");
        assert_eq!(b.len(), 11);
        b.advance(6);
        assert_eq!(&b[..], b"world");
        let w = b.split_to(3);
        assert_eq!(w.to_vec(), b"wor");
        assert_eq!(&b[..], b"ld");
        assert_eq!(b.get_u16(), u16::from_be_bytes(*b"ld"));
        assert!(b.is_empty());
    }

    #[test]
    fn split_to_is_a_view_not_a_copy() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"payload-bytes");
        let view = b.split_to(7);
        assert_eq!(view, b"payload");
        assert_eq!(b.internal_copies(), 0, "split-off itself copies nothing");
        // Appending while the view is outstanding un-shares: only the
        // unread tail moves, and the view is unaffected.
        b.extend_from_slice(b"!");
        assert_eq!(b.internal_copies(), 6, "only the 6-byte unread tail moved");
        assert_eq!(&b[..], b"-bytes!");
        assert_eq!(view, b"payload");
    }

    #[test]
    fn bytes_slice_and_split_share_storage() {
        let src = Bytes::from(b"abcdefgh".to_vec());
        let mid = src.slice(2..6);
        assert_eq!(mid, b"cdef");
        let mut rest = src.clone();
        let head = rest.split_to(3);
        assert_eq!(head, b"abc");
        assert_eq!(rest, b"defgh");
        assert_eq!(src, b"abcdefgh", "source view unchanged");
        assert_eq!(mid.slice(1..3), b"de");
    }

    #[test]
    fn empty_bytes_do_not_allocate_per_instance() {
        let a = Bytes::new();
        let b = Bytes::default();
        assert!(a.is_empty() && b.is_empty());
        assert!(Arc::ptr_eq(&a.data, &b.data), "all empties share one store");
    }

    #[test]
    fn freeze_hands_off_the_whole_tail() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"0123456789");
        b.advance(4);
        let frozen = b.freeze();
        assert_eq!(frozen, b"456789");
    }

    #[test]
    fn compaction_keeps_contents() {
        let mut b = BytesMut::new();
        let mut expected = std::collections::VecDeque::new();
        for i in 0..5000u32 {
            b.extend_from_slice(&i.to_be_bytes());
            expected.push_back(i);
            if i % 2 == 0 {
                assert_eq!(b.get_u32(), expected.pop_front().unwrap());
            }
        }
        while let Some(want) = expected.pop_front() {
            assert_eq!(b.get_u32(), want);
        }
        assert!(b.is_empty());
    }
}
