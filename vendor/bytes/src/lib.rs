//! Vendored, dependency-free subset of the [`bytes`](https://docs.rs/bytes)
//! crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors the small slice of the `bytes` API that the LMONP codec
//! actually uses: the [`Buf`]/[`BufMut`] cursor traits (big-endian scalar
//! accessors only — LMONP is big-endian throughout) and a [`BytesMut`]
//! growable buffer with cheap front consumption for the incremental frame
//! reader.
//!
//! The implementations favour clarity over zero-copy tricks: `BytesMut` is a
//! `Vec<u8>` plus a read cursor that is compacted lazily. That is plenty for
//! the workloads here while keeping `advance`/`split_to` amortized O(1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// Read-side byte cursor (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining to be read.
    fn remaining(&self) -> usize;

    /// The unread bytes as a contiguous slice.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    ///
    /// # Panics
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        *self = &self[cnt..];
    }
}

/// Write-side byte sink (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer with cheap front consumption (subset of
/// `bytes::BytesMut`).
#[derive(Default, Clone)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Index of the first unread byte in `data`.
    head: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap), head: 0 }
    }

    /// Number of unread bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Whether the buffer holds no unread bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append bytes at the back.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.compact_if_large();
        self.data.extend_from_slice(src);
    }

    /// Reserve room for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.compact_if_large();
        self.data.reserve(additional);
    }

    /// Split off and return the first `at` unread bytes.
    ///
    /// # Panics
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let piece = self.data[self.head..self.head + at].to_vec();
        self.head += at;
        BytesMut { data: piece, head: 0 }
    }

    /// Copy the unread bytes into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    /// Drop the consumed prefix once it dominates the allocation, keeping
    /// `advance`/`split_to` amortized O(1).
    fn compact_if_large(&mut self) {
        if self.head > 4096 && self.head * 2 > self.data.len() {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.head += cnt;
        self.compact_if_large();
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let head = self.head;
        &mut self.data[head..]
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

impl From<&[u8]> for BytesMut {
    fn from(src: &[u8]) -> Self {
        BytesMut { data: src.to_vec(), head: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_buf_roundtrip() {
        let mut v = Vec::new();
        v.put_u8(1);
        v.put_u16(0x0203);
        v.put_u32(0x0405_0607);
        v.put_u64(0x0809_0A0B_0C0D_0E0F);
        v.put_slice(b"xy");
        let mut s = &v[..];
        assert_eq!(s.remaining(), 17);
        assert_eq!(s.get_u8(), 1);
        assert_eq!(s.get_u16(), 0x0203);
        assert_eq!(s.get_u32(), 0x0405_0607);
        assert_eq!(s.get_u64(), 0x0809_0A0B_0C0D_0E0F);
        let mut rest = [0u8; 2];
        s.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"xy");
        assert!(!s.has_remaining());
    }

    #[test]
    fn bytes_mut_split_and_advance() {
        let mut b = BytesMut::with_capacity(8);
        b.extend_from_slice(b"hello world");
        assert_eq!(b.len(), 11);
        b.advance(6);
        assert_eq!(&b[..], b"world");
        let w = b.split_to(3);
        assert_eq!(w.to_vec(), b"wor");
        assert_eq!(&b[..], b"ld");
        assert_eq!(b.get_u16(), u16::from_be_bytes(*b"ld"));
        assert!(b.is_empty());
    }

    #[test]
    fn compaction_keeps_contents() {
        let mut b = BytesMut::new();
        let mut expected = std::collections::VecDeque::new();
        for i in 0..5000u32 {
            b.extend_from_slice(&i.to_be_bytes());
            expected.push_back(i);
            if i % 2 == 0 {
                assert_eq!(b.get_u32(), expected.pop_front().unwrap());
            }
        }
        while let Some(want) = expected.pop_front() {
            assert_eq!(b.get_u32(), want);
        }
        assert!(b.is_empty());
    }
}
