//! Vendored, dependency-free subset of the
//! [`proptest`](https://docs.rs/proptest) API.
//!
//! The build environment has no network access to a crates registry, so this
//! crate implements the property-testing surface the workspace uses:
//!
//! * the [`proptest!`], [`prop_compose!`], [`prop_oneof!`],
//!   [`prop_assert!`] and [`prop_assert_eq!`] macros;
//! * [`strategy::Strategy`] with `prop_map`, [`strategy::Just`], integer and
//!   float range strategies, tuple strategies, [`arbitrary::any`], a
//!   character-class string strategy (the `"[a-z_/]{1,30}"` form), and
//!   [`collection::vec`];
//! * [`test_runner::Config`] (a.k.a. `ProptestConfig`) with `with_cases`.
//!
//! Differences from real proptest, deliberately accepted: **no value-level
//! shrinking** — instead the runner does poor-man's shrinking over *case
//! indices*: cases run in ascending order, so the first failure is the
//! minimal failing index; the runner re-runs it to confirm it reproduces
//! and reports that minimal counterexample (flagging non-idempotent test
//! bodies it cannot confirm). Value generation is a plain random draw
//! rather than a bias-tuned tree. Case sequences are deterministic per
//! test name, so CI failures reproduce locally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-case outcome types and the case-loop driver.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// The generator handed to strategies; deterministic per (test, case).
    pub type TestRng = SmallRng;

    /// Why a test case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case asked to be discarded (`prop_assume!`).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result type every generated case body returns.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (stands in for `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Maximum rejected cases tolerated before giving up.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases, ..Config::default() }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64, max_global_rejects: 1024 }
        }
    }

    /// Stable seed derived from the test name and case index, so every run
    /// (and every CI machine) explores the same sequence.
    fn case_seed(name: &str, case: u32) -> u64 {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ ((case as u64) << 32 | case as u64)
    }

    /// Drive `body` for `config.cases` cases. On a failure, do poor-man's
    /// shrinking: cases run in ascending index order, so the first failing
    /// index *is* the minimal one for a deterministic body; the runner
    /// re-runs that case once to confirm it reproduces (flagging
    /// non-idempotent bodies that mutate captured state) and panics
    /// reporting the confirmed minimal counterexample. (Real proptest
    /// shrinks the generated value instead; we shrink the case index.)
    pub fn run_cases(
        config: Config,
        name: &str,
        mut body: impl FnMut(&mut TestRng) -> TestCaseResult,
    ) {
        let mut rejects = 0u32;
        let mut case = 0u32;
        let mut passed = 0u32;
        while passed < config.cases {
            let mut rng = TestRng::seed_from_u64(case_seed(name, case));
            match body(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!("proptest '{name}': too many rejected cases (last: {why})");
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    let confirmed = confirm(name, case, msg, &mut body);
                    panic!(
                        "proptest '{name}' failed at case {case} — the minimal failing \
                         index: every earlier case passed (deterministic; rerun \
                         reproduces it): {confirmed}"
                    );
                }
            }
            case += 1;
        }
    }

    /// Re-run the failing case once to confirm it reproduces. A
    /// non-idempotent body (one that mutates captured state) cannot be
    /// confirmed; the report says so instead of presenting an
    /// unreproducible counterexample as minimal.
    fn confirm(
        name: &str,
        case: u32,
        first_msg: String,
        body: &mut impl FnMut(&mut TestRng) -> TestCaseResult,
    ) -> String {
        let mut rng = TestRng::seed_from_u64(case_seed(name, case));
        match body(&mut rng) {
            Err(TestCaseError::Fail(msg)) => msg,
            other => format!(
                "{first_msg} [warning: case {case} did not reproduce on re-run \
                 (got {other:?}); the test body may mutate captured state]"
            ),
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Box the strategy, erasing its concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Strategy always yielding a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Strategy backed by a sampling closure; used by `prop_compose!`.
    pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
        f: F,
        _marker: PhantomData<fn() -> T>,
    }

    impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<T, F> {
        /// Wrap a sampling closure.
        pub fn new(f: F) -> Self {
            FnStrategy { f, _marker: PhantomData }
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Uniform choice between boxed alternatives; built by `prop_oneof!`.
    pub struct Union<T> {
        variants: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `variants` (must be non-empty).
        pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!variants.is_empty(), "prop_oneof! needs at least one variant");
            Union { variants }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.variants.len());
            self.variants[idx].sample(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }

    /// `&str` strategies generate strings from a character-class pattern:
    /// a sequence of literal characters or `[...]` classes (with `a-z`
    /// ranges), each optionally followed by `{m}` or `{m,n}` repetition.
    /// This covers the `"[a-z_/]{1,30}"` shapes the workspace uses.
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"));
                let set = expand_class(&chars[i + 1..close]);
                i = close + 1;
                set
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                vec![chars[i - 1]]
            } else {
                i += 1;
                vec![chars[i - 1]]
            };
            let (lo, hi) = parse_repeat(&chars, &mut i);
            let count = if lo == hi { lo } else { rng.gen_range(lo..=hi) };
            for _ in 0..count {
                out.push(alphabet[rng.gen_range(0..alphabet.len())]);
            }
        }
        out
    }

    /// Expand a class body like `a-z_/` into its member characters.
    fn expand_class(body: &[char]) -> Vec<char> {
        let mut set = Vec::new();
        let mut i = 0;
        while i < body.len() {
            if i + 2 < body.len() && body[i + 1] == '-' {
                let (lo, hi) = (body[i] as u32, body[i + 2] as u32);
                for c in lo..=hi {
                    if let Some(c) = char::from_u32(c) {
                        set.push(c);
                    }
                }
                i += 3;
            } else {
                set.push(body[i]);
                i += 1;
            }
        }
        assert!(!set.is_empty(), "empty character class");
        set
    }

    /// Parse an optional `{m}` / `{m,n}` at `chars[*i]`; defaults to `{1}`.
    fn parse_repeat(chars: &[char], i: &mut usize) -> (usize, usize) {
        if *i >= chars.len() || chars[*i] != '{' {
            return (1, 1);
        }
        let close = chars[*i..]
            .iter()
            .position(|&c| c == '}')
            .map(|p| *i + p)
            .expect("unclosed '{' in pattern");
        let body: String = chars[*i + 1..close].iter().collect();
        *i = close + 1;
        match body.split_once(',') {
            Some((lo, hi)) => (
                lo.trim().parse().expect("repeat lower bound"),
                hi.trim().parse().expect("repeat upper bound"),
            ),
            None => {
                let n = body.trim().parse().expect("repeat count");
                (n, n)
            }
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.gen::<u64>() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated text debuggable.
            (rng.gen_range(0x20u32..0x7F) as u8) as char
        }
    }

    /// Strategy for [`Arbitrary`] types; returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// A strategy producing unconstrained values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification accepted by [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// Generate vectors whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }
}

/// Glob-import module matching `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest,
    };
}

/// Define property tests. Supports the standard form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_test(x in 0u32..10, v in proptest::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                $crate::test_runner::run_cases(__config, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    let __out: $crate::test_runner::TestCaseResult = (|| {
                        $body
                        Ok(())
                    })();
                    __out
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Compose strategies into a named strategy-returning function.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($args:tt)*)(
        $($pat:pat in $strat:expr),+ $(,)?
    ) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($args)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |__rng| {
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                $body
            })
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strat) as $crate::strategy::BoxedStrategy<_>),+
        ])
    };
}

/// Assert inside a proptest body, failing the case (not panicking) on
/// violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __a, __b
        );
    }};
}

/// Inequality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0u32..10, b in 0u32..10) -> (u32, u32) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u8..7, y in 0u64..=4) {
            prop_assert!((3..7).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()), "len {}", v.len());
        }

        #[test]
        fn exact_vec_length(v in crate::collection::vec(any::<u16>(), 3)) {
            prop_assert_eq!(v.len(), 3);
        }

        #[test]
        fn compose_and_map(p in arb_pair(), z in (0u32..5).prop_map(|v| v * 2)) {
            prop_assert!(p.0 < 10 && p.1 < 10);
            prop_assert!(z % 2 == 0 && z < 10);
        }

        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8), 5u8..7]) {
            prop_assert!([1u8, 2, 5, 6].contains(&v), "v={v}");
        }

        #[test]
        fn string_pattern(s in "[a-c_]{2,6}") {
            prop_assert!((2..=6).contains(&s.len()), "bad len: {s:?}");
            prop_assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '_')), "bad chars: {s:?}");
        }

        #[test]
        fn tuples_sample(t in (0u8..3, 0u16..3, 0u32..3)) {
            prop_assert!(t.0 < 3 && t.1 < 3 && t.2 < 3);
        }
    }

    #[test]
    fn determinism_same_name_same_sequence() {
        use crate::strategy::Strategy;
        use crate::test_runner::{run_cases, Config};
        let mut first = Vec::new();
        run_cases(Config::with_cases(5), "determinism_probe", |rng| {
            first.push((0u64..1000).sample(rng));
            Ok(())
        });
        let mut second = Vec::new();
        run_cases(Config::with_cases(5), "determinism_probe", |rng| {
            second.push((0u64..1000).sample(rng));
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        use crate::test_runner::{run_cases, Config};
        run_cases(Config::default(), "always_fails", |_rng| {
            prop_assert!(false, "forced failure");
            Ok(())
        });
    }

    #[test]
    fn failure_reports_confirmed_minimal_case_index() {
        use crate::strategy::Strategy;
        use crate::test_runner::{run_cases, Config};
        // Fail on draws above a threshold: the runner must report the
        // failing index as minimal (ascending exploration order makes it
        // so) with the *confirmed* counterexample message.
        let run = || {
            std::panic::catch_unwind(|| {
                run_cases(Config::with_cases(64), "minimal_probe", |rng| {
                    let v = (0u64..100).sample(rng);
                    prop_assert!(v < 30, "v={v}");
                    Ok(())
                });
            })
        };
        let msg = |r: std::thread::Result<()>| -> String {
            let err = r.expect_err("the property must fail");
            err.downcast_ref::<String>().cloned().expect("panic payload is a String")
        };
        let first = msg(run());
        assert!(first.contains("the minimal failing index"), "{first}");
        assert!(first.contains("v="), "confirmed re-run message present: {first}");
        assert!(!first.contains("did not reproduce"), "idempotent body confirms: {first}");
        // Deterministic: a second run reports the identical counterexample.
        assert_eq!(first, msg(run()));
    }

    #[test]
    fn minimal_case_confirmation_flags_non_idempotent_bodies() {
        use crate::test_runner::{run_cases, Config};
        // A body failing exactly once (via captured state) cannot be
        // confirmed on re-run; the report must say so instead of lying.
        let result = std::panic::catch_unwind(|| {
            let mut calls = 0u32;
            run_cases(Config::with_cases(8), "flaky_probe", move |_rng| {
                calls += 1;
                prop_assert!(calls != 3, "third call fails");
                Ok(())
            });
        });
        let err = result.expect_err("must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap();
        assert!(msg.contains("did not reproduce on re-run"), "{msg}");
    }
}
