//! Vendored, dependency-free subset of the
//! [`parking_lot`](https://docs.rs/parking_lot) API.
//!
//! The build environment has no network access to a crates registry, so this
//! crate provides the `parking_lot` surface the workspace uses — [`Mutex`],
//! [`RwLock`] and [`Condvar`] without lock poisoning — implemented on top of
//! `std::sync`. Poisoning is erased the way most `parking_lot` users expect:
//! a panic while holding the lock does not make later accesses fail, so the
//! guards are plain values rather than `Result`s.

#![warn(missing_docs)]

use std::sync;
use std::time::Duration;

/// A mutex whose `lock` never fails (no poisoning), mirroring
/// `parking_lot::Mutex`.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never fail, mirroring
/// `parking_lot::RwLock`.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Result of a [`Condvar::wait_for`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`], mirroring
/// `parking_lot::Condvar`: `wait` takes the guard by `&mut` instead of by
/// value.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a condition variable.
    pub fn new() -> Self {
        Condvar::default()
    }

    /// Block until notified, releasing `guard` while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        replace_guard(guard, |g| self.inner.wait(g).unwrap_or_else(sync::PoisonError::into_inner));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        replace_guard(guard, |g| {
            let (g, res) =
                self.inner.wait_timeout(g, timeout).unwrap_or_else(sync::PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Run `f` on the guard by value, putting the returned guard back in place.
///
/// `std`'s condvar consumes and returns the guard; `parking_lot`'s mutates it
/// through `&mut`, so the bridge must temporarily move the guard out of the
/// caller's slot.
fn replace_guard<'a, T: ?Sized>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    take_mut(slot, f);
}

/// Minimal `take_mut`: moves out of `&mut`, aborting the process if `f`
/// panics mid-move (the value would otherwise be duplicated/dropped twice).
fn take_mut<T>(slot: &mut T, f: impl FnOnce(T) -> T) {
    struct AbortOnPanic;
    impl Drop for AbortOnPanic {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    let bomb = AbortOnPanic;
    // SAFETY: `slot` is valid for reads and writes; the value read out is
    // written back exactly once before the borrow ends. If `f` panics the
    // bomb aborts, so the moved-out value is never observed twice.
    unsafe {
        let value = std::ptr::read(slot);
        let new = f(value);
        std::ptr::write(slot, new);
    }
    std::mem::forget(bomb);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_all();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        drop(ready);
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
