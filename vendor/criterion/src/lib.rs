//! Vendored, dependency-free subset of the
//! [`criterion`](https://docs.rs/criterion) API.
//!
//! The build environment has no network access to a crates registry, so this
//! crate implements the benchmarking surface the workspace's `harness =
//! false` bench targets use: [`Criterion::benchmark_group`], `throughput`,
//! `sample_size`, `bench_function`, `bench_with_input`, [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is honest but simple: each benchmark is warmed up, then timed
//! over `sample_size` samples whose iteration counts target a fixed sample
//! duration; the median, minimum and maximum per-iteration times are
//! printed. There are no plots, no statistical regression against saved
//! baselines, and no CLI filtering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time for the measurement phase of one benchmark.
const TARGET_MEASURE_TIME: Duration = Duration::from_millis(400);
/// Target wall time for warm-up.
const TARGET_WARMUP_TIME: Duration = Duration::from_millis(100);

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), throughput: None, sample_size: 30 }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named collection of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Set the number of measurement samples (minimum 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(10);
        self
    }

    /// Run a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut |b| f(b));
        self
    }

    /// Run a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), &mut |b| f(b, input));
        self
    }

    /// Explicitly end the group (drop also suffices, as in criterion).
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut bencher);
        report(&self.name, &id.id, self.throughput, &bencher.samples);
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    /// Per-iteration durations, one per sample.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measure `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: find an iteration count that fills the warm-up window.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_WARMUP_TIME {
                // Scale so one sample lasts ~ measure_time / sample_size.
                let per_iter = elapsed.as_nanos().max(1) / iters as u128;
                let sample_ns =
                    (TARGET_MEASURE_TIME.as_nanos() / self.sample_size.max(1) as u128).max(1);
                iters = ((sample_ns / per_iter.max(1)) as u64).max(1);
                break;
            }
            iters = iters.saturating_mul(2);
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Measure with per-iteration setup excluded from timing.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        self.samples.clear();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Batch sizing hint for [`Bencher::iter_batched`] (ignored here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

fn report(group: &str, id: &str, throughput: Option<Throughput>, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let (lo, hi) = (sorted[0], sorted[sorted.len() - 1]);
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => format!("  {}/s", human_bytes(n as f64 / median.as_secs_f64())),
        Throughput::Elements(n) => {
            format!("  {:.3} Melem/s", n as f64 / median.as_secs_f64() / 1e6)
        }
    });
    println!(
        "{group}/{id}: [{} {} {}]{}",
        human_time(lo),
        human_time(median),
        human_time(hi),
        rate.unwrap_or_default()
    );
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn human_bytes(rate: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = rate;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.2} {}", UNITS[unit])
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("unit");
        g.sample_size(10);
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0u64..64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("shift", 3), &3u32, |b, &s| {
            b.iter(|| black_box(1u64) << s)
        });
        g.finish();
    }

    criterion_group!(unit_benches, sample_bench);

    #[test]
    fn group_runs_and_reports() {
        unit_benches();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }

    #[test]
    fn human_units() {
        assert_eq!(human_time(Duration::from_nanos(500)), "500 ns");
        assert!(human_time(Duration::from_micros(1500)).ends_with("ms"));
        assert!(human_bytes(2048.0).starts_with("2.00 KiB"));
    }
}
