//! Vendored, dependency-free subset of the
//! [`crossbeam-channel`](https://docs.rs/crossbeam-channel) API.
//!
//! The build environment has no network access to a crates registry, so this
//! crate provides the surface the workspace uses: MPMC [`unbounded`] and
//! [`bounded`] channels with cloneable [`Sender`]s *and* [`Receiver`]s, the
//! timeout/try receive variants, and an event-driven [`select!`] macro
//! covering the `recv(rx) -> msg => { ... }` arm form.
//!
//! Implementation: a `Mutex<VecDeque>` plus two condvars per channel.
//! Disconnection follows crossbeam semantics — a channel is disconnected
//! once all senders *or* all receivers are dropped; receivers drain buffered
//! messages before reporting disconnection.
//!
//! Multi-channel waits ([`select!`], and any consumer building its own
//! readiness loop) use a [`SelectWaker`]: a shared epoch condvar that every
//! watched channel bumps on send *and* on disconnect, so a blocked select
//! wakes the moment any arm becomes ready instead of sleeping out a park
//! interval. [`Receiver::watch`] registers a waker; registrations are weak,
//! so dropping the waker unregisters it automatically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

/// Correctness backstop for [`SelectWaker::wait`]: even if a wakeup were
/// somehow missed, a waiter re-polls after this long. The epoch protocol
/// makes missed wakeups impossible for watched channels, so in practice
/// waits end on the condvar, not this cap.
const WAKER_FALLBACK_PARK: Duration = Duration::from_millis(500);

/// A shared readiness signal for multi-channel waits.
///
/// Protocol: read [`SelectWaker::epoch`], poll every watched channel with
/// [`Receiver::try_recv`], and if nothing was ready call
/// [`SelectWaker::wait`] with the epoch read *before* polling. Any send or
/// disconnect on a watched channel bumps the epoch and notifies, so an event
/// that lands between the poll sweep and the wait makes the wait return
/// immediately — no missed wakeups, no sleep-polling.
#[derive(Clone)]
pub struct SelectWaker {
    inner: Arc<WakerInner>,
}

struct WakerInner {
    epoch: Mutex<u64>,
    cv: Condvar,
}

impl SelectWaker {
    /// A fresh waker, not yet watching any channel.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        SelectWaker { inner: Arc::new(WakerInner { epoch: Mutex::new(0), cv: Condvar::new() }) }
    }

    /// The current epoch; pass it to [`SelectWaker::wait`] after polling.
    pub fn epoch(&self) -> u64 {
        *self.inner.epoch.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Block until the epoch moves past `seen` (an event arrived on some
    /// watched channel) or the fallback park cap elapses.
    pub fn wait(&self, seen: u64) {
        self.wait_timeout(seen, WAKER_FALLBACK_PARK);
    }

    /// [`SelectWaker::wait`] with an explicit cap; returns `true` if the
    /// epoch advanced (a real event) rather than the cap expiring.
    pub fn wait_timeout(&self, seen: u64, cap: Duration) -> bool {
        let deadline = Instant::now() + cap;
        let mut epoch = self.inner.epoch.lock().unwrap_or_else(|e| e.into_inner());
        while *epoch == seen {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return false;
            }
            let (e, _res) =
                self.inner.cv.wait_timeout(epoch, remaining).unwrap_or_else(|e| e.into_inner());
            epoch = e;
        }
        true
    }

    fn downgrade(&self) -> Weak<WakerInner> {
        Arc::downgrade(&self.inner)
    }
}

impl WakerInner {
    fn bump(&self) {
        let mut epoch = self.epoch.lock().unwrap_or_else(|e| e.into_inner());
        *epoch = epoch.wrapping_add(1);
        self.cv.notify_all();
    }
}

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message was buffered at the time of the call.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    cap: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    not_empty: Condvar,
    not_full: Condvar,
    /// Wakers watching this channel for readiness ([`Receiver::watch`]).
    /// Weak so a finished select unregisters itself by dropping its waker;
    /// dead entries are pruned on every notification sweep.
    wakers: Mutex<Vec<Weak<WakerInner>>>,
    /// Fast-path guard: sends skip the `wakers` lock entirely while nothing
    /// is watching.
    waker_count: AtomicUsize,
}

impl<T> Inner<T> {
    fn disconnected_for_recv(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn disconnected_for_send(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }

    /// Bump every live watcher (called after a send or a disconnect).
    fn notify_wakers(&self) {
        if self.waker_count.load(Ordering::SeqCst) == 0 {
            return;
        }
        let mut wakers = self.wakers.lock().unwrap_or_else(|e| e.into_inner());
        wakers.retain(|w| match w.upgrade() {
            Some(inner) => {
                inner.bump();
                true
            }
            None => false,
        });
        self.waker_count.store(wakers.len(), Ordering::SeqCst);
    }
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers when the last clone drops.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC); each message is
/// delivered to exactly one receiver.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// A channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// A channel that holds at most `cap` buffered messages; sends block while
/// full.
///
/// Unlike real crossbeam, `cap == 0` is approximated as `cap == 1` rather
/// than a rendezvous channel.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        cap,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        wakers: Mutex::new(Vec::new()),
        waker_count: AtomicUsize::new(0),
    });
    (Sender { inner: inner.clone() }, Receiver { inner })
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::SeqCst);
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake all blocked receivers so they observe
            // the disconnect.
            {
                let _guard = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
                self.inner.not_empty.notify_all();
            }
            // And every select watching this channel: a disconnected arm is
            // ready (it fires with `Err(RecvError)`), so it must wake now
            // rather than wait out a park interval.
            self.inner.notify_wakers();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver { inner: self.inner.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sender {{ .. }}")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Receiver {{ .. }}")
    }
}

impl<T> Sender<T> {
    /// Send `msg`, blocking while a bounded channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.inner.disconnected_for_send() {
                return Err(SendError(msg));
            }
            match self.inner.cap {
                Some(cap) if queue.len() >= cap => {
                    queue = self.inner.not_full.wait(queue).unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.inner.not_empty.notify_one();
        self.inner.notify_wakers();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receive a message, blocking until one arrives or the channel
    /// disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if self.inner.disconnected_for_recv() {
                return Err(RecvError);
            }
            queue = self.inner.not_empty.wait(queue).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(msg) = queue.pop_front() {
            drop(queue);
            self.inner.not_full.notify_one();
            return Ok(msg);
        }
        if self.inner.disconnected_for_recv() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive with a deadline relative to now.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if self.inner.disconnected_for_recv() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, res) = self
                .inner
                .not_empty
                .wait_timeout(queue, remaining)
                .unwrap_or_else(|e| e.into_inner());
            queue = q;
            if res.timed_out() && queue.is_empty() {
                if self.inner.disconnected_for_recv() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain and return every currently buffered message.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }

    /// Pop up to `max` buffered messages into `out` with a **single** queue
    /// lock acquisition — the batch-drain primitive behind the mux receive
    /// pump and the comm-daemon loops, where a per-message `try_recv` sweep
    /// would pay one lock round trip per message.
    ///
    /// Returns how many messages were appended (possibly zero).
    /// `Err(TryRecvError::Disconnected)` is reported only when nothing was
    /// appended and every sender is gone, mirroring [`Receiver::try_recv`]'s
    /// drain-before-disconnect semantics.
    pub fn try_drain(&self, out: &mut Vec<T>, max: usize) -> Result<usize, TryRecvError> {
        let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        let n = max.min(queue.len());
        out.extend(queue.drain(..n));
        drop(queue);
        if n > 0 {
            // Bounded senders may have been blocked on any of the freed
            // slots.
            self.inner.not_full.notify_all();
            return Ok(n);
        }
        if self.inner.disconnected_for_recv() {
            Err(TryRecvError::Disconnected)
        } else {
            Ok(0)
        }
    }

    /// Register `waker` to be bumped whenever this channel gains a message
    /// or disconnects. Registration is weak: dropping the waker (or every
    /// clone of it) unregisters automatically. Dead registrations are
    /// pruned here as well as on notification, so a select loop over a
    /// channel that never receives traffic cannot accumulate them.
    pub fn watch(&self, waker: &SelectWaker) {
        let mut wakers = self.inner.wakers.lock().unwrap_or_else(|e| e.into_inner());
        wakers.retain(|w| w.strong_count() > 0);
        wakers.push(waker.downgrade());
        self.inner.waker_count.store(wakers.len(), Ordering::SeqCst);
    }
}

/// Type-inference helper for `select!`: an `Err(RecvError)` result whose
/// `Ok` type is pinned to the receiver's element type.
#[doc(hidden)]
pub fn __disconnected<T>(_rx: &Receiver<T>) -> Result<T, RecvError> {
    Err(RecvError)
}

/// Event-driven select over `recv(rx) -> msg => { ... }` arms.
///
/// Semantics match crossbeam for the supported form: an arm fires when its
/// channel yields a message *or* observes disconnection (the bound variable
/// is a `Result<T, RecvError>`). Readiness is event-driven: a
/// [`SelectWaker`] is registered on every polled channel, and the macro
/// blocks on its condvar between poll sweeps — a send or disconnect on any
/// arm wakes the select immediately (the old implementation parked 200 µs
/// between sweeps, which put that park on every comm-daemon hot path).
/// The selected arm and its received value are encoded as nested `Result`s
/// (arm 0 → `Ok(v)`, arm 1 → `Err(Ok(v))`, arm k → `Err^k(..)`) so the
/// polling loop only *picks* an arm; the arm body runs **after** the loop.
/// That keeps `break`/`continue` inside arm bodies bound to the user's own
/// enclosing loops, matching real crossbeam semantics.
#[macro_export]
macro_rules! select {
    // Space-separated block arms, as in `match`.
    ($(recv($rx:expr) -> $msg:pat => $body:block)+) => {
        $crate::select! { $(recv($rx) -> $msg => $body),+ }
    };
    ($(recv($rx:expr) -> $msg:pat => $body:expr),+ $(,)?) => {{
        let __waker = $crate::SelectWaker::new();
        $($crate::Receiver::watch(&$rx, &__waker);)+
        let __sel = loop {
            // Epoch is read *before* the poll sweep: an event landing after
            // a miss but before the wait advances the epoch, so the wait
            // returns immediately — no missed wakeups.
            let __epoch = $crate::SelectWaker::epoch(&__waker);
            $crate::select!(@poll () $(($rx))+);
            $crate::SelectWaker::wait(&__waker, __epoch);
        };
        $crate::select!(@unpack __sel, $(($msg => $body))+)
    }};

    // @poll: emit one try_recv per arm; on readiness, break out of the
    // enclosing `loop` with the arm's value wrapped in its nesting tag.
    // The accumulator of `E` tokens counts how many `Err(..)` layers deep
    // this arm sits.
    (@poll ($($w:tt)*) ($rx:expr)) => {
        // Last arm: innermost position, no `Ok` layer of its own.
        match $crate::Receiver::try_recv(&$rx) {
            Ok(__v) => break $crate::select!(@wrap ($($w)*) Ok(__v)),
            Err($crate::TryRecvError::Disconnected) => {
                break $crate::select!(@wrap ($($w)*) $crate::__disconnected(&$rx))
            }
            Err($crate::TryRecvError::Empty) => {}
        }
    };
    (@poll ($($w:tt)*) ($rx:expr) $($rest:tt)+) => {
        match $crate::Receiver::try_recv(&$rx) {
            Ok(__v) => break $crate::select!(@wrap ($($w)*) Ok(Ok(__v))),
            Err($crate::TryRecvError::Disconnected) => {
                break $crate::select!(@wrap ($($w)*) Ok($crate::__disconnected(&$rx)))
            }
            Err($crate::TryRecvError::Empty) => {}
        }
        $crate::select!(@poll ($($w)* E) $($rest)+);
    };

    // @wrap: apply one `Err(..)` layer per accumulated `E`.
    (@wrap () $v:expr) => { $v };
    (@wrap (E $($rest:tt)*) $v:expr) => { $crate::select!(@wrap ($($rest)*) Err($v)) };

    // @unpack: peel the nesting, binding the chosen arm's pattern and
    // running its body outside the polling loop.
    (@unpack $sel:expr, ($msg:pat => $body:expr)) => {{
        let $msg = $sel;
        $body
    }};
    (@unpack $sel:expr, ($msg:pat => $body:expr) $($rest:tt)+) => {
        match $sel {
            Ok(__inner) => {
                let $msg = __inner;
                $body
            }
            Err(__rest) => $crate::select!(@unpack __rest, $($rest)+),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees
            tx
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        let tx = t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        let mut all = got;
        all.extend(h.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn select_fires_ready_arm() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx_a.send(5).unwrap();
        let seen = select! {
            recv(rx_a) -> msg => ("a", msg),
            recv(rx_b) -> msg => ("b", msg),
        };
        assert_eq!(seen, ("a", Ok(5)));
    }

    #[test]
    fn select_arm_break_binds_to_user_loop() {
        // Arm bodies must run outside the macro's internal polling loop so
        // a bare `break` exits the *user's* loop (crossbeam semantics).
        let (tx, rx) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let mut seen = 0;
        loop {
            select! {
                recv(rx) -> msg => {
                    if msg == Ok(2) {
                        break;
                    }
                    seen += 1;
                },
                recv(rx2) -> _msg => unreachable!("rx2 never fires"),
            }
        }
        assert_eq!(seen, 1, "first message processed, second broke the loop");
    }

    #[test]
    fn select_returns_arm_value() {
        let (tx, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx.send(41).unwrap();
        let got = select! {
            recv(rx_a) -> msg => msg.map(|v| v + 1),
            recv(rx_b) -> msg => msg,
        };
        assert_eq!(got, Ok(42));
    }

    #[test]
    fn select_wakes_immediately_on_send_not_after_a_park() {
        // The arm's message lands while the select is blocked; the wakeup
        // must ride the waker condvar, far under the 500 ms fallback park.
        let (tx, rx) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            let t_send = Instant::now();
            tx.send(1).unwrap();
            t_send
        });
        let t0 = Instant::now();
        let got = select! {
            recv(rx) -> msg => msg,
            recv(rx2) -> msg => msg,
        };
        let woke = Instant::now();
        assert_eq!(got, Ok(1));
        let t_send = h.join().unwrap();
        assert!(woke >= t_send, "select cannot fire before the send");
        assert!(
            woke.duration_since(t_send) < Duration::from_millis(100),
            "wakeup took {:?}; select parked instead of waking on the event",
            woke.duration_since(t_send)
        );
        assert!(t0.elapsed() >= Duration::from_millis(30), "select blocked until the send");
    }

    #[test]
    fn select_closed_channel_arm_wakes_immediately() {
        // Regression for the satellite: a channel whose last sender drops
        // while the select is blocked must fire its disconnect arm at once,
        // not after waiting out a park interval.
        let (tx, rx) = bounded::<u32>(0); // zero-capacity arm
        let (_tx2, rx2) = unbounded::<u32>();
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            let t_drop = Instant::now();
            drop(tx);
            t_drop
        });
        let got = select! {
            recv(rx) -> msg => msg,
            recv(rx2) -> msg => msg,
        };
        let woke = Instant::now();
        assert_eq!(got, Err(RecvError));
        let t_drop = h.join().unwrap();
        assert!(
            woke.duration_since(t_drop) < Duration::from_millis(100),
            "disconnect wakeup took {:?}; select waited out a park interval",
            woke.duration_since(t_drop)
        );
    }

    #[test]
    fn select_already_closed_zero_capacity_arm_fires_without_waiting() {
        let (tx, rx) = bounded::<u32>(0);
        let (_tx2, rx2) = unbounded::<u32>();
        drop(tx);
        let t0 = Instant::now();
        let got = select! {
            recv(rx) -> msg => msg,
            recv(rx2) -> msg => msg,
        };
        assert_eq!(got, Err(RecvError));
        assert!(t0.elapsed() < Duration::from_millis(50), "no wait for an already-closed arm");
    }

    #[test]
    fn waker_epoch_protocol_has_no_missed_wakeups() {
        // Event lands between the poll sweep (epoch read) and the wait:
        // the wait must return immediately because the epoch advanced.
        let (tx, rx) = unbounded::<u32>();
        let waker = SelectWaker::new();
        rx.watch(&waker);
        let seen = waker.epoch();
        tx.send(9).unwrap(); // bumps the epoch
        let t0 = Instant::now();
        assert!(waker.wait_timeout(seen, Duration::from_secs(5)), "epoch advanced");
        assert!(t0.elapsed() < Duration::from_millis(50));
        assert_eq!(rx.try_recv(), Ok(9));
    }

    #[test]
    fn dead_waker_registrations_are_pruned() {
        let (tx, rx) = unbounded::<u32>();
        for _ in 0..64 {
            let w = SelectWaker::new();
            rx.watch(&w);
            // w drops here: registration goes dead.
        }
        tx.send(1).unwrap(); // notify sweep prunes every dead entry
        assert_eq!(rx.inner.waker_count.load(Ordering::SeqCst), 0);
        assert_eq!(rx.recv(), Ok(1));
    }

    #[test]
    fn watch_prunes_dead_registrations_on_silent_channels() {
        // A select loop re-registers each iteration; on a channel that
        // never sends, the registration list must not grow unboundedly.
        let (_tx, rx) = unbounded::<u32>();
        for _ in 0..1000 {
            let w = SelectWaker::new();
            rx.watch(&w);
        }
        let live = SelectWaker::new();
        rx.watch(&live);
        assert!(
            rx.inner.waker_count.load(Ordering::SeqCst) <= 2,
            "dead entries must be pruned at registration time, found {}",
            rx.inner.waker_count.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn try_drain_takes_a_bounded_batch_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        let mut out = Vec::new();
        assert_eq!(rx.try_drain(&mut out, 4), Ok(4));
        assert_eq!(out, vec![0, 1, 2, 3]);
        assert_eq!(rx.try_drain(&mut out, usize::MAX), Ok(6));
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.try_drain(&mut out, usize::MAX), Ok(0), "empty but connected");
        drop(tx);
        assert_eq!(rx.try_drain(&mut out, usize::MAX), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_drain_drains_before_reporting_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        let mut out = Vec::new();
        assert_eq!(rx.try_drain(&mut out, usize::MAX), Ok(1), "buffered messages first");
        assert_eq!(rx.try_drain(&mut out, usize::MAX), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn try_drain_frees_bounded_slots_for_blocked_senders() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until try_drain frees a slot
        });
        thread::sleep(Duration::from_millis(20));
        let mut out = Vec::new();
        assert_eq!(rx.try_drain(&mut out, usize::MAX), Ok(2));
        t.join().unwrap();
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn select_observes_disconnect() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (tx_b, rx_b) = unbounded::<u32>();
        drop(tx_b);
        let seen = select! {
            recv(rx_b) -> msg => msg,
            recv(rx_a) -> msg => msg,
        };
        assert_eq!(seen, Err(RecvError));
        drop(tx_a);
    }
}
