//! Vendored, dependency-free subset of the
//! [`crossbeam-channel`](https://docs.rs/crossbeam-channel) API.
//!
//! The build environment has no network access to a crates registry, so this
//! crate provides the surface the workspace uses: MPMC [`unbounded`] and
//! [`bounded`] channels with cloneable [`Sender`]s *and* [`Receiver`]s, the
//! timeout/try receive variants, and a polling [`select!`] macro covering the
//! `recv(rx) -> msg => { ... }` arm form.
//!
//! Implementation: a `Mutex<VecDeque>` plus two condvars per channel.
//! Disconnection follows crossbeam semantics — a channel is disconnected
//! once all senders *or* all receivers are dropped; receivers drain buffered
//! messages before reporting disconnection.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message was buffered at the time of the call.
    Empty,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no message.
    Timeout,
    /// The channel is empty and every sender is gone.
    Disconnected,
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    cap: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Inner<T> {
    fn disconnected_for_recv(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }

    fn disconnected_for_send(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }
}

/// The sending half of a channel. Cloneable; the channel disconnects for
/// receivers when the last clone drops.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// The receiving half of a channel. Cloneable (MPMC); each message is
/// delivered to exactly one receiver.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

/// A channel with no capacity bound.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// A channel that holds at most `cap` buffered messages; sends block while
/// full.
///
/// Unlike real crossbeam, `cap == 0` is approximated as `cap == 1` rather
/// than a rendezvous channel.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        cap,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { inner: inner.clone() }, Receiver { inner })
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::SeqCst);
        Sender { inner: self.inner.clone() }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender gone: wake all blocked receivers so they observe
            // the disconnect.
            let _guard = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver { inner: self.inner.clone() }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sender {{ .. }}")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Receiver {{ .. }}")
    }
}

impl<T> Sender<T> {
    /// Send `msg`, blocking while a bounded channel is full.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.inner.disconnected_for_send() {
                return Err(SendError(msg));
            }
            match self.inner.cap {
                Some(cap) if queue.len() >= cap => {
                    queue = self.inner.not_full.wait(queue).unwrap_or_else(|e| e.into_inner());
                }
                _ => break,
            }
        }
        queue.push_back(msg);
        drop(queue);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Receiver<T> {
    /// Receive a message, blocking until one arrives or the channel
    /// disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if self.inner.disconnected_for_recv() {
                return Err(RecvError);
            }
            queue = self.inner.not_empty.wait(queue).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receive without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(msg) = queue.pop_front() {
            drop(queue);
            self.inner.not_full.notify_one();
            return Ok(msg);
        }
        if self.inner.disconnected_for_recv() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receive with a deadline relative to now.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.inner.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if self.inner.disconnected_for_recv() {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, res) = self
                .inner
                .not_empty
                .wait_timeout(queue, remaining)
                .unwrap_or_else(|e| e.into_inner());
            queue = q;
            if res.timed_out() && queue.is_empty() {
                if self.inner.disconnected_for_recv() {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of messages currently buffered.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no messages are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain and return every currently buffered message.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }
}

/// Type-inference helper for `select!`: an `Err(RecvError)` result whose
/// `Ok` type is pinned to the receiver's element type.
#[doc(hidden)]
pub fn __disconnected<T>(_rx: &Receiver<T>) -> Result<T, RecvError> {
    Err(RecvError)
}

/// Polling select over `recv(rx) -> msg => { ... }` arms.
///
/// Semantics match crossbeam for the supported form: an arm fires when its
/// channel yields a message *or* observes disconnection (the bound variable
/// is a `Result<T, RecvError>`). Readiness is checked by round-robin polling
/// with a short park between sweeps rather than true event registration —
/// adequate for the daemon loops in this workspace, where select sits at the
/// top of a blocking state machine.
/// The selected arm and its received value are encoded as nested `Result`s
/// (arm 0 → `Ok(v)`, arm 1 → `Err(Ok(v))`, arm k → `Err^k(..)`) so the
/// polling loop only *picks* an arm; the arm body runs **after** the loop.
/// That keeps `break`/`continue` inside arm bodies bound to the user's own
/// enclosing loops, matching real crossbeam semantics.
#[macro_export]
macro_rules! select {
    // Space-separated block arms, as in `match`.
    ($(recv($rx:expr) -> $msg:pat => $body:block)+) => {
        $crate::select! { $(recv($rx) -> $msg => $body),+ }
    };
    ($(recv($rx:expr) -> $msg:pat => $body:expr),+ $(,)?) => {{
        let __sel = loop {
            $crate::select!(@poll () $(($rx))+);
            ::std::thread::sleep(::std::time::Duration::from_micros(200));
        };
        $crate::select!(@unpack __sel, $(($msg => $body))+)
    }};

    // @poll: emit one try_recv per arm; on readiness, break out of the
    // enclosing `loop` with the arm's value wrapped in its nesting tag.
    // The accumulator of `E` tokens counts how many `Err(..)` layers deep
    // this arm sits.
    (@poll ($($w:tt)*) ($rx:expr)) => {
        // Last arm: innermost position, no `Ok` layer of its own.
        match $crate::Receiver::try_recv(&$rx) {
            Ok(__v) => break $crate::select!(@wrap ($($w)*) Ok(__v)),
            Err($crate::TryRecvError::Disconnected) => {
                break $crate::select!(@wrap ($($w)*) $crate::__disconnected(&$rx))
            }
            Err($crate::TryRecvError::Empty) => {}
        }
    };
    (@poll ($($w:tt)*) ($rx:expr) $($rest:tt)+) => {
        match $crate::Receiver::try_recv(&$rx) {
            Ok(__v) => break $crate::select!(@wrap ($($w)*) Ok(Ok(__v))),
            Err($crate::TryRecvError::Disconnected) => {
                break $crate::select!(@wrap ($($w)*) Ok($crate::__disconnected(&$rx)))
            }
            Err($crate::TryRecvError::Empty) => {}
        }
        $crate::select!(@poll ($($w)* E) $($rest)+);
    };

    // @wrap: apply one `Err(..)` layer per accumulated `E`.
    (@wrap () $v:expr) => { $v };
    (@wrap (E $($rest:tt)*) $v:expr) => { $crate::select!(@wrap ($($rest)*) Err($v)) };

    // @unpack: peel the nesting, binding the chosen arm's pattern and
    // running its body outside the polling loop.
    (@unpack $sel:expr, ($msg:pat => $body:expr)) => {{
        let $msg = $sel;
        $body
    }};
    (@unpack $sel:expr, ($msg:pat => $body:expr) $($rest:tt)+) => {
        match $sel {
            Ok(__inner) => {
                let $msg = __inner;
                $body
            }
            Err(__rest) => $crate::select!(@unpack __rest, $($rest)+),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn recv_timeout_expires() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let t = thread::spawn(move || {
            tx.send(3).unwrap(); // blocks until a slot frees
            tx
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        let tx = t.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn mpmc_each_message_delivered_once() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let h = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        let mut all = got;
        all.extend(h.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn select_fires_ready_arm() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx_a.send(5).unwrap();
        let seen = select! {
            recv(rx_a) -> msg => ("a", msg),
            recv(rx_b) -> msg => ("b", msg),
        };
        assert_eq!(seen, ("a", Ok(5)));
    }

    #[test]
    fn select_arm_break_binds_to_user_loop() {
        // Arm bodies must run outside the macro's internal polling loop so
        // a bare `break` exits the *user's* loop (crossbeam semantics).
        let (tx, rx) = unbounded::<u32>();
        let (_tx2, rx2) = unbounded::<u32>();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        let mut seen = 0;
        loop {
            select! {
                recv(rx) -> msg => {
                    if msg == Ok(2) {
                        break;
                    }
                    seen += 1;
                },
                recv(rx2) -> _msg => unreachable!("rx2 never fires"),
            }
        }
        assert_eq!(seen, 1, "first message processed, second broke the loop");
    }

    #[test]
    fn select_returns_arm_value() {
        let (tx, rx_a) = unbounded::<u32>();
        let (_tx_b, rx_b) = unbounded::<u32>();
        tx.send(41).unwrap();
        let got = select! {
            recv(rx_a) -> msg => msg.map(|v| v + 1),
            recv(rx_b) -> msg => msg,
        };
        assert_eq!(got, Ok(42));
    }

    #[test]
    fn select_observes_disconnect() {
        let (tx_a, rx_a) = unbounded::<u32>();
        let (tx_b, rx_b) = unbounded::<u32>();
        drop(tx_b);
        let seen = select! {
            recv(rx_b) -> msg => msg,
            recv(rx_a) -> msg => msg,
        };
        assert_eq!(seen, Err(RecvError));
        drop(tx_a);
    }
}
