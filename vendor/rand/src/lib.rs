//! Vendored, dependency-free subset of the [`rand`](https://docs.rs/rand)
//! 0.8 API.
//!
//! The build environment has no network access to a crates registry, so this
//! crate implements the surface the workspace uses: [`RngCore`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] with
//! `seed_from_u64`, the [`rngs::SmallRng`]/[`rngs::StdRng`] named engines and
//! [`thread_rng`]. All engines are xoshiro256** seeded via SplitMix64 — not
//! cryptographic, deterministic for a given seed, which is exactly what the
//! simulator and property tests need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::ops::{Range, RangeInclusive};

/// Low-level generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut impl RngCore) -> Self;
}

impl Standard for u8 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32() as u8
    }
}
impl Standard for u16 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32() as u16
    }
}
impl Standard for u32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn draw(rng: &mut impl RngCore) -> Self {
        rng.next_u32() & 1 == 1
    }
}
impl Standard for f64 {
    fn draw(rng: &mut impl RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    fn draw(rng: &mut impl RngCore) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return <$t as Standard>::draw(rng);
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return <$u as Standard>::draw(rng) as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// Debiased uniform draw in `[0, bound)`; `bound == 0` means the full
/// 64-bit range.
fn uniform_u64(rng: &mut impl RngCore, bound: u64) -> u64 {
    if bound == 0 {
        return rng.next_u64();
    }
    // Rejection sampling over the largest multiple of `bound`.
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a uniformly distributed value.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Return `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::draw(self) < p
    }

    /// Fill `dest` with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministically seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Construct from OS/time entropy.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_seed())
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    use std::time::{SystemTime, UNIX_EPOCH};
    let t = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default();
    let mut h = std::collections::hash_map::RandomState::new().build_hasher();
    h.write_u128(t.as_nanos());
    h.finish()
}

/// Core xoshiro256** engine shared by the named generators.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl RngCore for Xoshiro256 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
        }
        // All-zero state would be a fixed point; nudge it.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Xoshiro256 { s }
    }
}

/// Named generator engines (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Fast small-state generator (stands in for `rand::rngs::SmallRng`).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            SmallRng(Xoshiro256::from_seed(seed))
        }
    }

    /// Default generator (stands in for `rand::rngs::StdRng`; NOT
    /// cryptographic, unlike the real one).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: [u8; 32]) -> Self {
            StdRng(Xoshiro256::from_seed(seed))
        }
    }

    /// Handle to the thread-local generator returned by
    /// [`thread_rng`](super::thread_rng).
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) ());

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            super::with_thread_rng(|r| r.next_u32())
        }
        fn next_u64(&mut self) -> u64 {
            super::with_thread_rng(|r| r.next_u64())
        }
    }
}

thread_local! {
    static THREAD_RNG: RefCell<Xoshiro256> =
        RefCell::new(Xoshiro256::seed_from_u64(entropy_seed()));
}

fn with_thread_rng<T>(f: impl FnOnce(&mut Xoshiro256) -> T) -> T {
    THREAD_RNG.with(|r| f(&mut r.borrow_mut()))
}

/// A lazily seeded thread-local generator (subset of `rand::thread_rng`).
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng(())
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: u16 = r.gen_range(0u16..=3);
            assert!(w <= 3);
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_rate_sane() {
        let mut r = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn thread_rng_works() {
        let mut r = thread_rng();
        let a = r.next_u64();
        let b = r.next_u64();
        assert_ne!(a, b);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
